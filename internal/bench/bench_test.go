package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsRunQuick smoke-runs every registered experiment in
// quick mode and sanity-checks the rendered output.
func TestAllExperimentsRunQuick(t *testing.T) {
	exps := All()
	if len(exps) < 10 {
		t.Fatalf("only %d experiments registered", len(exps))
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(e.ID, &buf, true); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			out := buf.String()
			if len(out) < 40 {
				t.Errorf("%s: suspiciously short output:\n%s", e.ID, out)
			}
			if !strings.Contains(out, e.Title) {
				t.Errorf("%s: missing title banner", e.ID)
			}
		})
	}
}

func TestRunUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("nope", &buf, true); err == nil {
		t.Error("unknown experiment must error")
	}
}

func TestByIDAndAllOrdered(t *testing.T) {
	if _, ok := ByID("fig8"); !ok {
		t.Error("fig8 missing")
	}
	exps := All()
	for i := 1; i < len(exps); i++ {
		if exps[i-1].ID >= exps[i].ID {
			t.Error("All() must be ID-sorted")
		}
	}
}

// TestHeadlineShape asserts the central claim's direction: SOAP-bin
// transmission beats XML substantially for large arrays.
func TestHeadlineShape(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("headline", &buf, true); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	idx := strings.Index(out, "improvement: ")
	if idx < 0 {
		t.Fatalf("no improvement line:\n%s", out)
	}
	rest := out[idx+len("improvement: "):]
	xStr := rest[:strings.Index(rest, "x")]
	ratio, err := strconv.ParseFloat(xStr, 64)
	if err != nil {
		t.Fatalf("ratio %q: %v", xStr, err)
	}
	if ratio < 1.5 {
		t.Errorf("XML/binary transmission ratio = %.2f, expected a substantial win", ratio)
	}
}

// TestTable1Shape asserts the Table I ordering: SOAP slowest, binary
// variants fastest, compression in between (sizes likewise).
func TestTable1Shape(t *testing.T) {
	var buf bytes.Buffer
	if err := Run("table1", &buf, true); err != nil {
		t.Fatal(err)
	}
	rates := map[string]float64{}
	sizes := map[string]float64{}
	for _, line := range strings.Split(buf.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 3 {
			continue
		}
		rate, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			continue
		}
		size, err := strconv.ParseFloat(fields[len(fields)-2], 64)
		if err != nil {
			continue
		}
		name := strings.Join(fields[:len(fields)-2], " ")
		rates[name] = rate
		sizes[name] = size
	}
	if len(rates) != 4 {
		t.Fatalf("parsed %d rows from:\n%s", len(rates), buf.String())
	}
	if !(rates["SOAP"] < rates["SOAP-bin"]) {
		t.Errorf("SOAP (%v ev/s) should be slower than SOAP-bin (%v ev/s)", rates["SOAP"], rates["SOAP-bin"])
	}
	if !(rates["SOAP-bin"] <= rates["Native PBIO"]*1.05) {
		t.Errorf("native PBIO (%v) should be at least as fast as SOAP-bin (%v)", rates["Native PBIO"], rates["SOAP-bin"])
	}
	// Binary and compressed must both be well under plain XML. (The paper
	// has compressed > binary in Table I but notes in §IV-B that
	// compressed XML is "mostly the same size as, and sometimes smaller
	// than" PBIO — our synthetic manifests compress very well, so we only
	// assert both beat XML.)
	if !(sizes["SOAP-bin"] < sizes["SOAP"]*0.6) {
		t.Errorf("SOAP-bin (%v B) should be well under SOAP (%v B)", sizes["SOAP-bin"], sizes["SOAP"])
	}
	if !(sizes["SOAP (compressed XML)"] < sizes["SOAP"]) {
		t.Errorf("compression must shrink XML: %v", sizes)
	}
}
