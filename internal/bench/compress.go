package bench

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"time"

	"soapbinq/internal/core"
	"soapbinq/internal/stats"
	"soapbinq/internal/workload"
	"soapbinq/internal/xmlenc"
)

func init() {
	register(Experiment{
		ID:    "ablation-compress",
		Title: "Ablation: compression level vs size/time for the compressed-SOAP baseline",
		Run:   ablationCompress,
	})
}

// ablationCompress sweeps DEFLATE levels over the microbenchmark XML
// documents, showing the CPU-vs-size trade the compressed-SOAP baseline
// sits on (the paper uses one Lempel-Ziv setting; this quantifies the
// neighborhood around it and why compression wins on slow links but not
// fast ones).
func ablationCompress(w io.Writer, quick bool) error {
	n, discard := reps(quick)
	sizes := arraySizes(quick)
	v := workload.IntArray(sizes[len(sizes)-1])
	doc, err := xmlenc.Marshal("v", v)
	if err != nil {
		return err
	}

	table := stats.NewTable("level", "xml_B", "compressed_B", "ratio", "compress_us", "inflate_us")
	levels := []struct {
		name  string
		level int
	}{
		{"none (store)", flate.NoCompression},
		{"fastest (1)", flate.BestSpeed},
		{"default (-1)", flate.DefaultCompression},
		{"best (9)", flate.BestCompression},
	}
	for _, lv := range levels {
		z, err := deflateLevel(doc, lv.level)
		if err != nil {
			return err
		}
		compUS := stats.Summarize(stats.Repeat(n, discard, func() float64 {
			start := time.Now()
			deflateLevel(doc, lv.level)
			return us(start)
		})).Mean
		infUS := stats.Summarize(stats.Repeat(n, discard, func() float64 {
			start := time.Now()
			core.Inflate(z, 0)
			return us(start)
		})).Mean
		table.AddRow(lv.name,
			fmt.Sprintf("%d", len(doc)),
			fmt.Sprintf("%d", len(z)),
			fmt.Sprintf("%.2f", float64(len(doc))/float64(len(z))),
			fmt.Sprintf("%.0f", compUS),
			fmt.Sprintf("%.0f", infUS),
		)
	}
	table.Render(w)
	return nil
}

func deflateLevel(data []byte, level int) ([]byte, error) {
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, level)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(data); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
