package bench

import (
	"io"
	"time"

	"soapbinq/internal/core"
	"soapbinq/internal/idl"
	"soapbinq/internal/pbio"
	"soapbinq/internal/stats"
	"soapbinq/internal/sunrpc"
	"soapbinq/internal/workload"
)

func init() {
	register(Experiment{
		ID:    "ablation-transport",
		Title: "Ablation: HTTP vs raw TCP transport for SOAP-bin (the Fig. 4b gap)",
		Run:   ablationTransport,
	})
}

// ablationTransport isolates the paper's explanation for Figure 4b — "the
// delay is mainly due to SOAP-bin's use of HTTP for its transactions" —
// by running the same nested-struct echo over Sun RPC, SOAP-bin on raw
// framed TCP, and SOAP-bin on HTTP, all over real localhost sockets.
func ablationTransport(w io.Writer, quick bool) error {
	n, discard := reps(quick)
	series := stats.NewSeries("depth", "sunrpc_us", "soapbin_tcp_us", "soapbin_http_us")

	for _, depth := range structDepths(quick) {
		v := workload.NestedStruct(depth, 3)
		dt := workload.NestedStructType(depth)

		// Sun RPC.
		rpcSrv := sunrpc.NewServer(benchProg, benchVers)
		if err := rpcSrv.Register(sunrpc.ProcDef{Proc: procObj, Arg: dt, Result: dt},
			func(arg idl.Value) (idl.Value, error) { return arg, nil }); err != nil {
			return err
		}
		if err := rpcSrv.ListenAndServe("127.0.0.1:0"); err != nil {
			return err
		}
		rpcClient := sunrpc.NewClient(rpcSrv.Addr(), benchProg, benchVers)
		rpcUS := stats.Summarize(stats.Repeat(n, discard, func() float64 {
			start := time.Now()
			if _, err := rpcClient.Call(procObj, v, dt); err != nil {
				return 0
			}
			return us(start)
		})).Mean
		rpcClient.Close()
		rpcSrv.Close()

		// SOAP-bin over raw TCP.
		fs := pbio.NewMemServer()
		spec := echoSpec(depth)
		srv := newEchoServer(spec, fs)
		ln, err := core.ServeTCP(srv, "127.0.0.1:0")
		if err != nil {
			return err
		}
		tcpTransport := core.NewTCPTransport(ln.Addr())
		tcpClient := core.NewClient(spec, tcpTransport, pbio.NewCodec(pbio.NewRegistry(fs)), core.WireBinary)
		tcpUS := stats.Summarize(stats.Repeat(n, discard, func() float64 {
			st, err := callStruct(tcpClient, v)
			if err != nil {
				return 0
			}
			return float64(st.Total()) / float64(time.Microsecond)
		})).Mean
		tcpTransport.Close()
		ln.Close()

		// SOAP-bin over HTTP.
		httpR := newHTTPRig(depth, core.WireBinary)
		httpUS := stats.Summarize(stats.Repeat(n, discard, func() float64 {
			st, err := callStruct(httpR.client, v)
			if err != nil {
				return 0
			}
			return float64(st.Total()) / float64(time.Microsecond)
		})).Mean
		httpR.Close()

		series.Add(float64(depth), rpcUS, tcpUS, httpUS)
	}
	series.Render(w)
	return nil
}
