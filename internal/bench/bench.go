// Package bench regenerates every table and figure of the paper's
// evaluation (Section IV). Each experiment prints the same rows/series the
// paper reports; `cmd/soapbench` exposes them on the command line and the
// repository root's bench_test.go wraps them in testing.B benchmarks.
//
// Absolute numbers will differ from the 2004 testbed (2.2 GHz Pentium 4s,
// real ADSL); the experiments are built so the paper's *shapes* hold —
// who wins, by roughly what factor, and where the crossovers fall.
// EXPERIMENTS.md records paper-vs-measured for each entry.
package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string // e.g. "fig4a", "table1"
	Title string // what the paper shows
	Run   func(w io.Writer, quick bool) error
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// All returns every experiment in ID order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// Run executes one experiment by ID.
func Run(id string, w io.Writer, quick bool) error {
	e, ok := ByID(id)
	if !ok {
		return fmt.Errorf("bench: unknown experiment %q", id)
	}
	fmt.Fprintf(w, "== %s: %s ==\n", e.ID, e.Title)
	return e.Run(w, quick)
}

// arraySizes returns the int-array element counts swept by the
// microbenchmarks (256 B – 1 MB of payload in full mode).
func arraySizes(quick bool) []int {
	if quick {
		return []int{64, 1024}
	}
	return []int{32, 256, 2048, 16384, 131072}
}

// structDepths returns the nested-struct depths swept.
func structDepths(quick bool) []int {
	if quick {
		return []int{2, 4}
	}
	return []int{1, 2, 4, 6, 8, 10}
}

// reps returns (measured runs, discarded warm-up runs).
func reps(quick bool) (int, int) {
	if quick {
		return 3, 1
	}
	return 30, 3
}
