// Package viz implements the paper's remote visualization application
// (Figure 10): a service portal that advertises itself through WSDL, sits
// as a sink on an ECho bond-data channel, and serves display clients that
// request frames with per-request filter code and a desired output format
// — SVG (an XML document, as the paper notes) or the raw frame record.
package viz

import (
	"bytes"
	"fmt"
	"math"

	"soapbinq/internal/moldyn"
)

// RenderOptions controls SVG output.
type RenderOptions struct {
	Width, Height int     // canvas size (default 640×480)
	AtomRadius    float64 // default 4
}

func (o RenderOptions) withDefaults() RenderOptions {
	if o.Width <= 0 {
		o.Width = 640
	}
	if o.Height <= 0 {
		o.Height = 480
	}
	if o.AtomRadius <= 0 {
		o.AtomRadius = 4
	}
	return o
}

// elementColors maps element initials to display colors (CPK-inspired).
var elementColors = map[byte]string{
	'C': "#444444",
	'H': "#dddddd",
	'O': "#cc2222",
	'N': "#2244cc",
	'S': "#cccc22",
}

// RenderSVG projects a frame's 3-D atom positions onto the canvas
// (orthographic, z ignored for position but encoded as opacity) and draws
// bonds as lines and atoms as circles. The output is a complete SVG
// document — "just an XML document", which is what makes it the natural
// display format for the paper's XML-based display clients.
func RenderSVG(f *moldyn.Frame, opts RenderOptions) []byte {
	o := opts.withDefaults()
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	minZ, maxZ := math.Inf(1), math.Inf(-1)
	for _, a := range f.Atoms {
		minX, maxX = math.Min(minX, a.X), math.Max(maxX, a.X)
		minY, maxY = math.Min(minY, a.Y), math.Max(maxY, a.Y)
		minZ, maxZ = math.Min(minZ, a.Z), math.Max(maxZ, a.Z)
	}
	spanX, spanY, spanZ := maxX-minX, maxY-minY, maxZ-minZ
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	if spanZ <= 0 {
		spanZ = 1
	}
	margin := o.AtomRadius * 3
	px := func(a moldyn.Atom) (float64, float64, float64) {
		x := margin + (a.X-minX)/spanX*(float64(o.Width)-2*margin)
		y := margin + (a.Y-minY)/spanY*(float64(o.Height)-2*margin)
		depth := 0.35 + 0.65*(a.Z-minZ)/spanZ // nearer = more opaque
		return x, y, depth
	}

	var buf bytes.Buffer
	fmt.Fprintf(&buf, `<?xml version="1.0" encoding="UTF-8"?>`+"\n")
	fmt.Fprintf(&buf, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`+"\n",
		o.Width, o.Height, o.Width, o.Height)
	fmt.Fprintf(&buf, `  <title>molecule step %d</title>`+"\n", f.Step)
	fmt.Fprintf(&buf, `  <rect width="%d" height="%d" fill="#0a0a12"/>`+"\n", o.Width, o.Height)

	index := make(map[int64]moldyn.Atom, len(f.Atoms))
	for _, a := range f.Atoms {
		index[a.ID] = a
	}
	buf.WriteString(`  <g stroke="#8899aa" stroke-width="1.2">` + "\n")
	for _, b := range f.Bonds {
		a1, ok1 := index[b.A]
		a2, ok2 := index[b.B]
		if !ok1 || !ok2 {
			continue
		}
		x1, y1, _ := px(a1)
		x2, y2, _ := px(a2)
		fmt.Fprintf(&buf, `    <line x1="%.1f" y1="%.1f" x2="%.1f" y2="%.1f"/>`+"\n", x1, y1, x2, y2)
	}
	buf.WriteString("  </g>\n")

	for _, a := range f.Atoms {
		x, y, depth := px(a)
		color, ok := elementColors[a.Element]
		if !ok {
			color = "#888888"
		}
		fmt.Fprintf(&buf, `  <circle cx="%.1f" cy="%.1f" r="%.1f" fill="%s" fill-opacity="%.2f"/>`+"\n",
			x, y, o.AtomRadius, color, depth)
	}
	buf.WriteString("</svg>\n")
	return buf.Bytes()
}
