package viz

import (
	"bytes"
	"context"
	"image/png"
	"testing"

	"soapbinq/internal/core"
	"soapbinq/internal/idl"
	"soapbinq/internal/moldyn"
	"soapbinq/internal/soap"
)

func TestRenderPNG(t *testing.T) {
	sim := moldyn.NewSimulator(30, 7)
	f := sim.FrameAt(2)
	doc, err := RenderPNG(f, RenderOptions{Width: 200, Height: 150, AtomRadius: 3})
	if err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(bytes.NewReader(doc))
	if err != nil {
		t.Fatalf("output is not a PNG: %v", err)
	}
	b := img.Bounds()
	if b.Dx() != 200 || b.Dy() != 150 {
		t.Errorf("bounds = %v", b)
	}
	// Some pixel must differ from the background (atoms drawn).
	bgR, bgG, bgB, _ := pngBackground.RGBA()
	found := false
	for y := b.Min.Y; y < b.Max.Y && !found; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bl, _ := img.At(x, y).RGBA()
			if r != bgR || g != bgG || bl != bgB {
				found = true
				break
			}
		}
	}
	if !found {
		t.Error("rendered image is entirely background")
	}
	// Determinism.
	doc2, _ := RenderPNG(f, RenderOptions{Width: 200, Height: 150, AtomRadius: 3})
	if !bytes.Equal(doc, doc2) {
		t.Error("render must be deterministic")
	}
	// Degenerate single-atom frame must not panic or divide by zero.
	one := &moldyn.Frame{Step: 1, Atoms: []moldyn.Atom{{ID: 0, Element: 'Q'}}}
	if _, err := RenderPNG(one, RenderOptions{Width: 50, Height: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDrawLineEndpointsAndClipping(t *testing.T) {
	f := &moldyn.Frame{
		Step: 1,
		Atoms: []moldyn.Atom{
			{ID: 0, Element: 'C', X: 0, Y: 0},
			{ID: 1, Element: 'O', X: 10, Y: 7},
		},
		Bonds: []moldyn.Bond{{A: 0, B: 1}, {A: 0, B: 99}}, // dangling bond ignored
	}
	if _, err := RenderPNG(f, RenderOptions{Width: 64, Height: 64, AtomRadius: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestPortalServesPNG(t *testing.T) {
	portal, client, ch := portalRig(t)
	sim := moldyn.NewSimulator(20, 4)
	publishFrame(t, ch, portal, sim, 0)

	resp, err := client.Call(context.Background(), "getFrame", nil,
		soap.Param{Name: "filter", Value: idl.StringV("")},
		soap.Param{Name: "format", Value: idl.StringV(FormatPNG)},
	)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := DocFromResponse(resp.Value, FormatPNG)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(bytes.NewReader(doc)); err != nil {
		t.Fatalf("portal PNG does not decode: %v", err)
	}
	// Asking for the wrong format errors cleanly.
	if _, err := DocFromResponse(resp.Value, FormatSVG); err == nil {
		t.Error("format mismatch must fail")
	}
	_ = core.ResultParam // keep import shape stable
}
