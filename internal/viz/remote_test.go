package viz

import (
	"context"
	"strings"
	"testing"
	"time"

	"soapbinq/internal/core"
	"soapbinq/internal/echo"
	"soapbinq/internal/idl"
	"soapbinq/internal/moldyn"
	"soapbinq/internal/pbio"
	"soapbinq/internal/soap"
)

// TestRemotePortalEndToEnd runs Figure 10 fully distributed: the bond
// server publishes into an ECho bridge in "process A"; the portal in
// "process B" subscribes over TCP; a display client fetches SVG from the
// portal over SOAP-bin.
func TestRemotePortalEndToEnd(t *testing.T) {
	// Process A: bond server + ECho bridge.
	domain := echo.NewDomain()
	defer domain.Close()
	ch, err := domain.CreateChannel("bonds", moldyn.FrameType())
	if err != nil {
		t.Fatal(err)
	}
	bridge := echo.NewBridgeServer(domain)
	if err := bridge.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()

	// Process B: remote portal.
	portal, err := NewRemotePortal(bridge.Addr(), "bonds", "http://portal/soap")
	if err != nil {
		t.Fatal(err)
	}
	defer portal.Close()

	// Publish frames until the portal (via bridge + TCP) sees one.
	sim := moldyn.NewSimulator(40, 21)
	deadline := time.Now().Add(3 * time.Second)
	step := int64(0)
	for portal.Frames() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("remote portal never received a frame")
		}
		ch.Publish(sim.FrameAt(step).ToValue())
		step++
		time.Sleep(5 * time.Millisecond)
	}

	// Display client against the portal.
	fs := pbio.NewMemServer()
	srv := core.NewServer(Spec(), pbio.NewCodec(pbio.NewRegistry(fs)))
	if err := portal.Install(srv); err != nil {
		t.Fatal(err)
	}
	client := core.NewClient(Spec(), &core.Loopback{Server: srv}, pbio.NewCodec(pbio.NewRegistry(fs)), core.WireBinary)
	resp, err := client.Call(context.Background(), "getFrame", nil,
		soap.Param{Name: "filter", Value: idl.StringV("elements=C,H,O,N,S")},
		soap.Param{Name: "format", Value: idl.StringV(FormatSVG)},
	)
	if err != nil {
		t.Fatal(err)
	}
	svg, err := SVGFromResponse(resp.Value)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") || strings.Count(string(svg), "<circle") != 40 {
		t.Errorf("svg: %d circles", strings.Count(string(svg), "<circle"))
	}
}

func TestRemotePortalErrors(t *testing.T) {
	if _, err := NewRemotePortal("127.0.0.1:1", "bonds", ""); err == nil {
		t.Error("dead bridge must fail")
	}
	domain := echo.NewDomain()
	defer domain.Close()
	bridge := echo.NewBridgeServer(domain)
	if err := bridge.ListenAndServe("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer bridge.Close()
	if _, err := NewRemotePortal(bridge.Addr(), "nope", ""); err == nil {
		t.Error("unknown channel must fail")
	}
}
