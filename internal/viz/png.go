package viz

import (
	"bytes"
	"fmt"
	"image"
	"image/color"
	"image/png"
	"math"

	"soapbinq/internal/moldyn"
)

// PNG rendering: a rasterized alternative to SVG for display clients that
// want a bitmap (the paper's clients consume SVG, "just an XML document";
// PNG is this implementation's extra output format, exercising the same
// filter-then-render pipeline).

// elementRGBA mirrors elementColors for the rasterizer.
var elementRGBA = map[byte]color.RGBA{
	'C': {0x44, 0x44, 0x44, 0xFF},
	'H': {0xDD, 0xDD, 0xDD, 0xFF},
	'O': {0xCC, 0x22, 0x22, 0xFF},
	'N': {0x22, 0x44, 0xCC, 0xFF},
	'S': {0xCC, 0xCC, 0x22, 0xFF},
}

var (
	pngBackground = color.RGBA{0x0A, 0x0A, 0x12, 0xFF}
	pngBondColor  = color.RGBA{0x88, 0x99, 0xAA, 0xFF}
	pngFallback   = color.RGBA{0x88, 0x88, 0x88, 0xFF}
)

// RenderPNG rasterizes a frame with the same projection as RenderSVG and
// returns an encoded PNG document.
func RenderPNG(f *moldyn.Frame, opts RenderOptions) ([]byte, error) {
	o := opts.withDefaults()
	img := image.NewRGBA(image.Rect(0, 0, o.Width, o.Height))
	for y := 0; y < o.Height; y++ {
		for x := 0; x < o.Width; x++ {
			img.SetRGBA(x, y, pngBackground)
		}
	}

	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for _, a := range f.Atoms {
		minX, maxX = math.Min(minX, a.X), math.Max(maxX, a.X)
		minY, maxY = math.Min(minY, a.Y), math.Max(maxY, a.Y)
	}
	spanX, spanY := maxX-minX, maxY-minY
	if spanX <= 0 {
		spanX = 1
	}
	if spanY <= 0 {
		spanY = 1
	}
	margin := o.AtomRadius * 3
	px := func(a moldyn.Atom) (int, int) {
		x := margin + (a.X-minX)/spanX*(float64(o.Width)-2*margin)
		y := margin + (a.Y-minY)/spanY*(float64(o.Height)-2*margin)
		return int(x), int(y)
	}

	index := make(map[int64]moldyn.Atom, len(f.Atoms))
	for _, a := range f.Atoms {
		index[a.ID] = a
	}
	for _, b := range f.Bonds {
		a1, ok1 := index[b.A]
		a2, ok2 := index[b.B]
		if !ok1 || !ok2 {
			continue
		}
		x1, y1 := px(a1)
		x2, y2 := px(a2)
		drawLine(img, x1, y1, x2, y2, pngBondColor)
	}
	r := int(o.AtomRadius)
	for _, a := range f.Atoms {
		x, y := px(a)
		c, ok := elementRGBA[a.Element]
		if !ok {
			c = pngFallback
		}
		fillCircle(img, x, y, r, c)
	}

	var buf bytes.Buffer
	if err := png.Encode(&buf, img); err != nil {
		return nil, fmt.Errorf("viz: png encode: %w", err)
	}
	return buf.Bytes(), nil
}

// drawLine is Bresenham's algorithm.
func drawLine(img *image.RGBA, x1, y1, x2, y2 int, c color.RGBA) {
	dx := abs(x2 - x1)
	dy := -abs(y2 - y1)
	sx, sy := 1, 1
	if x1 > x2 {
		sx = -1
	}
	if y1 > y2 {
		sy = -1
	}
	err := dx + dy
	x, y := x1, y1
	for {
		setIfInside(img, x, y, c)
		if x == x2 && y == y2 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x += sx
		}
		if e2 <= dx {
			err += dx
			y += sy
		}
	}
}

func fillCircle(img *image.RGBA, cx, cy, r int, c color.RGBA) {
	for dy := -r; dy <= r; dy++ {
		for dx := -r; dx <= r; dx++ {
			if dx*dx+dy*dy <= r*r {
				setIfInside(img, cx+dx, cy+dy, c)
			}
		}
	}
}

func setIfInside(img *image.RGBA, x, y int, c color.RGBA) {
	if image.Pt(x, y).In(img.Rect) {
		img.SetRGBA(x, y, c)
	}
}

func abs(n int) int {
	if n < 0 {
		return -n
	}
	return n
}
