package viz

import (
	"fmt"
	"strconv"
	"strings"

	"soapbinq/internal/moldyn"
)

// FilterSpec is the parsed form of the filter code a display client sends
// with each request. The client can change it dynamically per request —
// the paper's step (3), "construct the appropriate request, with filter
// code and the desired output format".
//
// The textual syntax is semicolon-separated directives:
//
//	stride=K              keep every Kth atom (and bonds between kept atoms)
//	elements=C,H          keep only the listed elements
//	box=x0,y0,x1,y1       keep atoms whose (x, y) lies in the rectangle
//	nobonds               drop bond edges entirely
//
// e.g. "stride=2;elements=C,O;nobonds".
type FilterSpec struct {
	Stride         int
	Elements       map[byte]bool // nil means all
	HasBox         bool
	X0, Y0, X1, Y1 float64
	NoBonds        bool
}

// ParseFilter parses filter code. An empty string is the identity filter.
func ParseFilter(code string) (*FilterSpec, error) {
	f := &FilterSpec{Stride: 1}
	if strings.TrimSpace(code) == "" {
		return f, nil
	}
	for _, part := range strings.Split(code, ";") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, hasVal := strings.Cut(part, "=")
		switch key {
		case "stride":
			if !hasVal {
				return nil, fmt.Errorf("viz: stride needs a value")
			}
			n, err := strconv.Atoi(val)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("viz: bad stride %q", val)
			}
			f.Stride = n
		case "elements":
			if !hasVal || val == "" {
				return nil, fmt.Errorf("viz: elements needs a list")
			}
			f.Elements = make(map[byte]bool)
			for _, e := range strings.Split(val, ",") {
				e = strings.TrimSpace(e)
				if len(e) != 1 {
					return nil, fmt.Errorf("viz: bad element %q", e)
				}
				f.Elements[e[0]] = true
			}
		case "box":
			if !hasVal {
				return nil, fmt.Errorf("viz: box needs coordinates")
			}
			coords := strings.Split(val, ",")
			if len(coords) != 4 {
				return nil, fmt.Errorf("viz: box needs x0,y0,x1,y1")
			}
			vals := make([]float64, 4)
			for i, c := range coords {
				v, err := strconv.ParseFloat(strings.TrimSpace(c), 64)
				if err != nil {
					return nil, fmt.Errorf("viz: bad box coordinate %q", c)
				}
				vals[i] = v
			}
			f.HasBox = true
			f.X0, f.Y0, f.X1, f.Y1 = vals[0], vals[1], vals[2], vals[3]
			if f.X1 < f.X0 {
				f.X0, f.X1 = f.X1, f.X0
			}
			if f.Y1 < f.Y0 {
				f.Y0, f.Y1 = f.Y1, f.Y0
			}
		case "nobonds":
			if hasVal {
				return nil, fmt.Errorf("viz: nobonds takes no value")
			}
			f.NoBonds = true
		default:
			return nil, fmt.Errorf("viz: unknown filter directive %q", key)
		}
	}
	return f, nil
}

// Apply filters a frame: atoms failing any predicate are dropped, bonds
// survive only if both endpoints survive.
func (f *FilterSpec) Apply(in *moldyn.Frame) *moldyn.Frame {
	out := &moldyn.Frame{Step: in.Step}
	kept := make(map[int64]bool, len(in.Atoms))
	for i, a := range in.Atoms {
		if f.Stride > 1 && i%f.Stride != 0 {
			continue
		}
		if f.Elements != nil && !f.Elements[a.Element] {
			continue
		}
		if f.HasBox && (a.X < f.X0 || a.X > f.X1 || a.Y < f.Y0 || a.Y > f.Y1) {
			continue
		}
		out.Atoms = append(out.Atoms, a)
		kept[a.ID] = true
	}
	if !f.NoBonds {
		for _, b := range in.Bonds {
			if kept[b.A] && kept[b.B] {
				out.Bonds = append(out.Bonds, b)
			}
		}
	}
	return out
}
