package viz

import (
	"fmt"
	"sync"

	"soapbinq/internal/core"
	"soapbinq/internal/echo"
	"soapbinq/internal/idl"
	"soapbinq/internal/moldyn"
	"soapbinq/internal/soap"
	"soapbinq/internal/wsdl"
)

// Output formats a display client may request.
const (
	FormatSVG = "svg"
	FormatPNG = "png"
	FormatRaw = "raw"
)

// ResponseType is the portal's result record: the format actually used,
// the rendered document bytes when format is svg or png, and the
// (filtered) raw frame when format=raw. Unused members are zero — the
// same legacy-friendly padding convention the quality layer uses.
var ResponseType = idl.Struct("VizResponse",
	idl.F("format", idl.StringT()),
	idl.F("doc", idl.List(idl.Char())),
	idl.F("frame", moldyn.FrameType()),
)

// Spec returns the portal's service interface.
func Spec() *core.ServiceSpec {
	return core.MustServiceSpec("VizPortal",
		&core.OpDef{
			Name: "getFrame",
			Params: []soap.ParamSpec{
				{Name: "filter", Type: idl.StringT()},
				{Name: "format", Type: idl.StringT()},
			},
			Result:     ResponseType,
			Idempotent: true, // snapshot read; safe to retry
		},
		&core.OpDef{
			Name:       "describe",
			Result:     idl.StringT(),
			Idempotent: true,
		},
	)
}

// Portal is the service portal of Figure 10: a sink on the bond-data ECho
// channel, serving display clients over SOAP-bin and advertising its
// interface as WSDL.
type Portal struct {
	endpoint string
	cancel   func()

	mu     sync.RWMutex
	latest *moldyn.Frame
	frames int
}

// NewRemotePortal attaches a portal to a channel served by a remote ECho
// bridge (echo.BridgeServer) — the fully distributed form of Figure 10,
// where the bond server runs in another process and the portal is one of
// its event sinks.
func NewRemotePortal(bridgeAddr, channel, endpoint string) (*Portal, error) {
	p := &Portal{endpoint: endpoint}
	cancel, err := echo.SubscribeRemote(bridgeAddr, channel, p.consume)
	if err != nil {
		return nil, fmt.Errorf("viz: remote channel %q: %w", channel, err)
	}
	p.cancel = cancel
	return p, nil
}

// consume ingests one bond-data event.
func (p *Portal) consume(ev idl.Value) {
	f, err := moldyn.FrameFromValue(ev)
	if err != nil {
		return // ill-typed events cannot occur on a typed channel
	}
	p.mu.Lock()
	p.latest = f
	p.frames++
	p.mu.Unlock()
}

// NewPortal attaches a portal to the named channel in an ECho domain.
// The endpoint is advertised in the generated WSDL.
func NewPortal(domain *echo.Domain, channel, endpoint string) (*Portal, error) {
	ch, ok := domain.Open(channel)
	if !ok {
		return nil, fmt.Errorf("viz: no such channel %q", channel)
	}
	if !ch.Type().Equal(moldyn.FrameType()) {
		return nil, fmt.Errorf("viz: channel %q carries %s, want Frame", channel, ch.Type())
	}
	p := &Portal{endpoint: endpoint}
	cancel, err := ch.Subscribe(nil, p.consume)
	if err != nil {
		return nil, err
	}
	p.cancel = cancel
	return p, nil
}

// Close detaches the portal from its channel.
func (p *Portal) Close() {
	if p.cancel != nil {
		p.cancel()
	}
}

// Frames reports how many frames the portal has consumed.
func (p *Portal) Frames() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.frames
}

// Latest returns the most recent frame (nil before the first event).
func (p *Portal) Latest() *moldyn.Frame {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.latest
}

// Install registers the portal's handlers on a core server.
func (p *Portal) Install(srv *core.Server) error {
	if err := srv.Handle("getFrame", p.getFrame); err != nil {
		return err
	}
	return srv.Handle("describe", p.describe)
}

func (p *Portal) getFrame(_ *core.CallCtx, params []soap.Param) (idl.Value, error) {
	filterCode := params[0].Value.Str
	format := params[1].Value.Str

	frame := p.Latest()
	if frame == nil {
		return idl.Value{}, &soap.Fault{Code: soap.FaultCodeServer, String: "no frame available yet"}
	}
	spec, err := ParseFilter(filterCode)
	if err != nil {
		return idl.Value{}, &soap.Fault{Code: soap.FaultCodeClient, String: err.Error()}
	}
	filtered := spec.Apply(frame)

	switch format {
	case FormatSVG, "":
		svg := RenderSVG(filtered, RenderOptions{})
		return responseValue(FormatSVG, svg, &moldyn.Frame{Step: filtered.Step}), nil
	case FormatPNG:
		doc, err := RenderPNG(filtered, RenderOptions{})
		if err != nil {
			return idl.Value{}, err
		}
		return responseValue(FormatPNG, doc, &moldyn.Frame{Step: filtered.Step}), nil
	case FormatRaw:
		return responseValue(FormatRaw, nil, filtered), nil
	default:
		return idl.Value{}, &soap.Fault{Code: soap.FaultCodeClient, String: fmt.Sprintf("unknown format %q", format)}
	}
}

func (p *Portal) describe(_ *core.CallCtx, _ []soap.Param) (idl.Value, error) {
	doc, err := wsdl.Generate(Spec(), p.endpoint)
	if err != nil {
		return idl.Value{}, err
	}
	return idl.StringV(string(doc)), nil
}

func responseValue(format string, doc []byte, frame *moldyn.Frame) idl.Value {
	docList := make([]idl.Value, len(doc))
	for i, b := range doc {
		docList[i] = idl.CharV(b)
	}
	return idl.StructV(ResponseType,
		idl.StringV(format),
		idl.Value{Type: idl.List(idl.Char()), List: docList},
		frame.ToValue(),
	)
}

// DocFromResponse extracts the rendered document (SVG or PNG) from a
// getFrame response, verifying it carries the expected format.
func DocFromResponse(v idl.Value, wantFormat string) ([]byte, error) {
	format, ok := v.Field("format")
	if !ok || format.Str != wantFormat {
		return nil, fmt.Errorf("viz: response format %q, want %q", format.Str, wantFormat)
	}
	doc, _ := v.Field("doc")
	out := make([]byte, len(doc.List))
	for i, e := range doc.List {
		out[i] = e.Char
	}
	return out, nil
}

// SVGFromResponse extracts the SVG document from a getFrame response.
func SVGFromResponse(v idl.Value) ([]byte, error) {
	return DocFromResponse(v, FormatSVG)
}
