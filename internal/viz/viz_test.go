package viz

import (
	"context"
	"strings"
	"testing"
	"time"

	"soapbinq/internal/core"
	"soapbinq/internal/echo"
	"soapbinq/internal/idl"
	"soapbinq/internal/moldyn"
	"soapbinq/internal/pbio"
	"soapbinq/internal/soap"
	"soapbinq/internal/wsdl"
)

func TestRenderSVG(t *testing.T) {
	sim := moldyn.NewSimulator(40, 5)
	f := sim.FrameAt(3)
	svg := RenderSVG(f, RenderOptions{})
	s := string(svg)
	for _, want := range []string{"<svg", "</svg>", "<circle", "<line", "molecule step 3"} {
		if !strings.Contains(s, want) {
			t.Errorf("svg missing %q", want)
		}
	}
	if strings.Count(s, "<circle") != 40 {
		t.Errorf("circles = %d, want 40", strings.Count(s, "<circle"))
	}
	// Deterministic.
	if string(RenderSVG(f, RenderOptions{})) != s {
		t.Error("render must be deterministic")
	}
	// Single atom (degenerate span) must not divide by zero.
	one := &moldyn.Frame{Step: 1, Atoms: []moldyn.Atom{{ID: 0, Element: 'C'}}}
	if !strings.Contains(string(RenderSVG(one, RenderOptions{Width: 100, Height: 100, AtomRadius: 2})), "<circle") {
		t.Error("single-atom render failed")
	}
	// Unknown element gets the fallback color.
	odd := &moldyn.Frame{Step: 1, Atoms: []moldyn.Atom{{ID: 0, Element: 'Q'}}}
	if !strings.Contains(string(RenderSVG(odd, RenderOptions{})), "#888888") {
		t.Error("fallback color missing")
	}
}

func TestParseFilter(t *testing.T) {
	f, err := ParseFilter("stride=2; elements=C,O ;box=0,0,5,5;nobonds")
	if err != nil {
		t.Fatal(err)
	}
	if f.Stride != 2 || !f.Elements['C'] || !f.Elements['O'] || f.Elements['H'] {
		t.Errorf("filter = %+v", f)
	}
	if !f.HasBox || f.X1 != 5 || !f.NoBonds {
		t.Errorf("filter = %+v", f)
	}
	// Box coordinates normalize.
	f2, _ := ParseFilter("box=5,5,0,0")
	if f2.X0 != 0 || f2.Y1 != 5 {
		t.Errorf("box normalize: %+v", f2)
	}
	id, err := ParseFilter("  ")
	if err != nil || id.Stride != 1 || id.Elements != nil {
		t.Errorf("identity filter: %+v %v", id, err)
	}
	if _, err := ParseFilter("stride=2;;nobonds"); err != nil {
		t.Errorf("empty directive must be tolerated: %v", err)
	}

	for _, bad := range []string{
		"stride", "stride=0", "stride=x",
		"elements", "elements=", "elements=CC",
		"box=1,2,3", "box=a,b,c,d", "box",
		"nobonds=1", "wat=1",
	} {
		if _, err := ParseFilter(bad); err == nil {
			t.Errorf("ParseFilter(%q) must fail", bad)
		}
	}
}

func TestFilterApply(t *testing.T) {
	frame := &moldyn.Frame{
		Step: 1,
		Atoms: []moldyn.Atom{
			{ID: 0, Element: 'C', X: 0, Y: 0},
			{ID: 1, Element: 'H', X: 1, Y: 1},
			{ID: 2, Element: 'C', X: 2, Y: 2},
			{ID: 3, Element: 'O', X: 9, Y: 9},
		},
		Bonds: []moldyn.Bond{{A: 0, B: 1}, {A: 0, B: 2}, {A: 2, B: 3}},
	}
	f, _ := ParseFilter("elements=C")
	out := f.Apply(frame)
	if len(out.Atoms) != 2 {
		t.Fatalf("atoms = %d", len(out.Atoms))
	}
	if len(out.Bonds) != 1 || out.Bonds[0] != (moldyn.Bond{A: 0, B: 2}) {
		t.Errorf("bonds = %v", out.Bonds)
	}

	f2, _ := ParseFilter("box=0,0,2,2")
	if got := f2.Apply(frame); len(got.Atoms) != 3 {
		t.Errorf("box atoms = %d", len(got.Atoms))
	}
	f3, _ := ParseFilter("stride=2")
	if got := f3.Apply(frame); len(got.Atoms) != 2 || got.Atoms[1].ID != 2 {
		t.Errorf("stride atoms = %v", got.Atoms)
	}
	f4, _ := ParseFilter("nobonds")
	if got := f4.Apply(frame); len(got.Bonds) != 0 || len(got.Atoms) != 4 {
		t.Error("nobonds filter")
	}
}

func portalRig(t *testing.T) (*Portal, *core.Client, *echo.Channel) {
	t.Helper()
	domain := echo.NewDomain()
	t.Cleanup(domain.Close)
	ch, err := domain.CreateChannel("bonds", moldyn.FrameType())
	if err != nil {
		t.Fatal(err)
	}
	portal, err := NewPortal(domain, "bonds", "http://portal.example/soap")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(portal.Close)

	fs := pbio.NewMemServer()
	srv := core.NewServer(Spec(), pbio.NewCodec(pbio.NewRegistry(fs)))
	if err := portal.Install(srv); err != nil {
		t.Fatal(err)
	}
	client := core.NewClient(Spec(), &core.Loopback{Server: srv}, pbio.NewCodec(pbio.NewRegistry(fs)), core.WireBinary)
	return portal, client, ch
}

func publishFrame(t *testing.T, ch *echo.Channel, portal *Portal, sim *moldyn.Simulator, step int64) {
	t.Helper()
	before := portal.Frames()
	if err := ch.Publish(sim.FrameAt(step).ToValue()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for portal.Frames() <= before {
		if time.Now().After(deadline) {
			t.Fatal("portal never consumed the frame")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPortalEndToEnd(t *testing.T) {
	portal, client, ch := portalRig(t)

	// Before any frame: fault.
	_, err := client.Call(context.Background(), "getFrame", nil,
		soap.Param{Name: "filter", Value: idl.StringV("")},
		soap.Param{Name: "format", Value: idl.StringV(FormatSVG)},
	)
	if err == nil {
		t.Fatal("empty portal must fault")
	}

	sim := moldyn.NewSimulator(30, 8)
	publishFrame(t, ch, portal, sim, 0)

	// SVG response.
	resp, err := client.Call(context.Background(), "getFrame", nil,
		soap.Param{Name: "filter", Value: idl.StringV("stride=2")},
		soap.Param{Name: "format", Value: idl.StringV(FormatSVG)},
	)
	if err != nil {
		t.Fatal(err)
	}
	svg, err := SVGFromResponse(resp.Value)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(svg), "<svg") {
		t.Error("not an SVG document")
	}
	if strings.Count(string(svg), "<circle") != 15 {
		t.Errorf("filtered circles = %d, want 15", strings.Count(string(svg), "<circle"))
	}

	// Raw response.
	resp, err = client.Call(context.Background(), "getFrame", nil,
		soap.Param{Name: "filter", Value: idl.StringV("")},
		soap.Param{Name: "format", Value: idl.StringV(FormatRaw)},
	)
	if err != nil {
		t.Fatal(err)
	}
	format, _ := resp.Value.Field("format")
	if format.Str != FormatRaw {
		t.Errorf("format = %q", format.Str)
	}
	frameV, _ := resp.Value.Field("frame")
	frame, err := moldyn.FrameFromValue(frameV)
	if err != nil {
		t.Fatal(err)
	}
	if len(frame.Atoms) != 30 {
		t.Errorf("raw atoms = %d", len(frame.Atoms))
	}
	if _, err := SVGFromResponse(resp.Value); err == nil {
		t.Error("SVGFromResponse on raw must fail")
	}

	// Bad filter / format.
	if _, err := client.Call(context.Background(), "getFrame", nil,
		soap.Param{Name: "filter", Value: idl.StringV("wat=1")},
		soap.Param{Name: "format", Value: idl.StringV(FormatSVG)},
	); err == nil {
		t.Error("bad filter must fault")
	}
	if _, err := client.Call(context.Background(), "getFrame", nil,
		soap.Param{Name: "filter", Value: idl.StringV("")},
		soap.Param{Name: "format", Value: idl.StringV("jpeg2000")},
	); err == nil {
		t.Error("bad format must fault")
	}
}

func TestPortalDescribeServesWSDL(t *testing.T) {
	_, client, _ := portalRig(t)
	resp, err := client.Call(context.Background(), "describe", nil)
	if err != nil {
		t.Fatal(err)
	}
	defs, err := wsdl.Parse([]byte(resp.Value.Str))
	if err != nil {
		t.Fatalf("served WSDL does not parse: %v", err)
	}
	if defs.Name != "VizPortal" || defs.Endpoint != "http://portal.example/soap" {
		t.Errorf("defs = %+v", defs)
	}
	spec, err := defs.ServiceSpec()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := spec.Op("getFrame"); !ok {
		t.Error("WSDL missing getFrame")
	}
}

func TestNewPortalErrors(t *testing.T) {
	domain := echo.NewDomain()
	defer domain.Close()
	if _, err := NewPortal(domain, "nope", ""); err == nil {
		t.Error("missing channel must fail")
	}
	domain.CreateChannel("ints", idl.Int())
	if _, err := NewPortal(domain, "ints", ""); err == nil {
		t.Error("wrong channel type must fail")
	}
}
