package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// PooledBuf keeps ad-hoc buffer allocation out of the wire hot path.
// Functions annotated with a
//
//	//soaplint:hotpath
//
// doc-comment line are the per-message encode/decode/framing routines
// the zero-allocation work pays for; inside them, a fresh
//
//   - make([]byte, ...) allocation, or
//   - bytes.Buffer value (composite literal, var declaration, or new)
//
// reintroduces per-call garbage that bufpool.Get / a pooled writer
// exists to absorb, so it is reported. Unannotated functions are
// untouched — cold paths may allocate freely. A deliberate allocation
// on a hot path (e.g. an amortized growth slope) is suppressed with
// //lint:ignore pooledbuf <reason>.
var PooledBuf = &Analyzer{
	Name: "pooledbuf",
	Doc:  "//soaplint:hotpath functions use pooled buffers, not make([]byte) or bytes.Buffer",
	Run:  runPooledBuf,
}

// hotpathMarker is the doc-comment line that opts a function into the
// check.
const hotpathMarker = "//soaplint:hotpath"

func runPooledBuf(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !isHotpath(fn.Doc) {
				continue
			}
			checkHotpathBody(pass, fn)
		}
	}
}

func isHotpath(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == hotpathMarker {
			return true
		}
	}
	return false
}

func checkHotpathBody(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			switch callee := ast.Unparen(node.Fun).(type) {
			case *ast.Ident:
				if b, ok := pass.Info.Uses[callee].(*types.Builtin); ok {
					switch b.Name() {
					case "make":
						if len(node.Args) > 0 && isByteSlice(pass.Info.Types[node.Args[0]].Type) {
							pass.Report(node.Pos(), "make([]byte, ...) in hot path %s; use bufpool.Get", name)
						}
					case "new":
						if len(node.Args) == 1 && isBytesBuffer(pass.Info.Types[node.Args[0]].Type) {
							pass.Report(node.Pos(), "new(bytes.Buffer) in hot path %s; write into a pooled buffer", name)
						}
					}
				}
			}
		case *ast.CompositeLit:
			if tv, ok := pass.Info.Types[node]; ok && isBytesBuffer(tv.Type) {
				pass.Report(node.Pos(), "bytes.Buffer literal in hot path %s; write into a pooled buffer", name)
			}
		case *ast.ValueSpec:
			// var buf bytes.Buffer — an allocation the moment it escapes
			// (and it escapes into any writer interface).
			if node.Type != nil {
				if tv, ok := pass.Info.Types[node.Type]; ok && isBytesBuffer(tv.Type) {
					pass.Report(node.Pos(), "bytes.Buffer declared in hot path %s; write into a pooled buffer", name)
				}
			}
		}
		return true
	})
}

// isByteSlice reports whether t is []byte (or a named type over it).
func isByteSlice(t types.Type) bool {
	if t == nil {
		return false
	}
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// isBytesBuffer reports whether t is bytes.Buffer.
func isBytesBuffer(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "bytes" && obj.Name() == "Buffer"
}
