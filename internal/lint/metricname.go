package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// MetricName enforces the metric-naming contract on obs registrations:
// every series is soapbinq_<subsystem>_<name>_<unit>, and the unit
// suffix matches the instrument kind (counters count events and end in
// _total; histograms and gauges carry an explicit unit). The registry
// panics on malformed names at first use, but only on the code path
// that registers them — the analyzer catches the name at lint time,
// before a rarely-exercised series panics in production.
var MetricName = &Analyzer{
	Name: "metricname",
	Doc:  "obs metric names follow soapbinq_<subsystem>_<name>_<unit> with kind-appropriate units",
	Run:  runMetricName,
}

// metricNamePattern is the shape every series name must have: the
// soapbinq_ prefix, then subsystem, name, and unit segments (at least
// three), all lowercase alphanumerics.
var metricNamePattern = regexp.MustCompile(`^soapbinq_[a-z][a-z0-9]*(_[a-z][a-z0-9]*){2,}$`)

// metricUnitSuffixes maps each obs constructor to its admissible unit
// suffixes.
var metricUnitSuffixes = map[string][]string{
	"NewCounter":   {"_total"},
	"NewHistogram": {"_ns", "_bytes"},
	"NewGauge":     {"_ns", "_bytes", "_count", "_ratio", "_state"},
}

func runMetricName(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pass.Info, call)
			if fn == nil || !isObsConstructor(fn) {
				return true
			}
			suffixes, ok := metricUnitSuffixes[fn.Name()]
			if !ok {
				return true
			}
			arg := call.Args[0]
			tv, ok := pass.Info.Types[arg]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				pass.Report(arg.Pos(), "obs.%s name must be a constant string so the series name is auditable", fn.Name())
				return true
			}
			name := constant.StringVal(tv.Value)
			if !metricNamePattern.MatchString(name) {
				pass.Report(arg.Pos(), "metric name %q does not match soapbinq_<subsystem>_<name>_<unit>", name)
				return true
			}
			for _, suf := range suffixes {
				if strings.HasSuffix(name, suf) {
					return true
				}
			}
			pass.Report(arg.Pos(), "metric name %q needs a %s unit suffix (%s)",
				name, strings.TrimPrefix(fn.Name(), "New"), strings.Join(suffixes, ", "))
			return true
		})
	}
}

// isObsConstructor reports whether fn is a package-level function of
// the obs package. Registry methods are excluded: the package-level
// constructors forward their (parameter) name to them, and every
// registration outside obs goes through the package-level helpers.
// Matching by package-path suffix keeps the analyzer independent of
// the module path.
func isObsConstructor(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	path := fn.Pkg().Path()
	return path == "obs" || strings.HasSuffix(path, "/obs")
}
