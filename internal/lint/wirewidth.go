package lint

import (
	"go/ast"
	"go/types"
)

// WireWidth enforces the receiver-makes-right invariant on the wire
// codec packages (pbio, xdr, sunrpc, core): what goes on the wire is
// fixed-width, so a message encoded on one platform decodes to the same
// values on another.
//
//   - binary.Write / binary.Read with data containing platform-width
//     int, uint, or uintptr is reported: the encoded size would depend on
//     the sender's word size.
//   - Importing unsafe is reported outright: memory-image encoding is
//     exactly what receiver-makes-right exists to avoid.
//
// Explicit fixed-width paths (AppendUint32, PutUint64, byte-wise
// encoding) are untouched — the compiler already forces explicit
// conversions there.
var WireWidth = &Analyzer{
	Name: "wirewidth",
	Doc:  "wire codecs encode fixed-width integers only; no platform-width binary.Write, no unsafe",
	Run:  runWireWidth,
}

func wireWidthApplies(path string) bool {
	switch pathLastSegment(path) {
	case "pbio", "xdr", "sunrpc", "core":
		return true
	}
	return false
}

func runWireWidth(pass *Pass) {
	if !wireWidthApplies(pass.Pkg.Path()) {
		return
	}
	for _, file := range pass.Files {
		for _, imp := range file.Imports {
			if imp.Path.Value == `"unsafe"` {
				pass.Report(imp.Pos(), "wire codec packages must not import unsafe; encode explicitly, fixed-width")
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			isWrite := isPkgFunc(callee, "encoding/binary", "Write")
			isRead := isPkgFunc(callee, "encoding/binary", "Read")
			if (!isWrite && !isRead) || len(call.Args) != 3 {
				return true
			}
			tv, ok := pass.Info.Types[call.Args[2]]
			if !ok || tv.Type == nil {
				return true
			}
			if hasPlatformWidthInt(tv.Type, map[types.Type]bool{}) {
				verb := "binary.Write"
				if isRead {
					verb = "binary.Read"
				}
				pass.Report(call.Args[2].Pos(), "%s with platform-width integer data (%s); use fixed-width types on the wire", verb, tv.Type)
			}
			return true
		})
	}
}

// hasPlatformWidthInt walks t looking for int, uint, or uintptr.
func hasPlatformWidthInt(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	switch u := t.Underlying().(type) {
	case *types.Basic:
		switch u.Kind() {
		case types.Int, types.Uint, types.Uintptr:
			return true
		}
	case *types.Pointer:
		return hasPlatformWidthInt(u.Elem(), seen)
	case *types.Slice:
		return hasPlatformWidthInt(u.Elem(), seen)
	case *types.Array:
		return hasPlatformWidthInt(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if hasPlatformWidthInt(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
