// Package transport is the boundedread golden fixture: unguarded
// io.ReadAll calls and unchecked wire-length allocations are reported;
// limited, in-memory, and bounds-checked reads are not.
package transport

import (
	"bytes"
	"encoding/binary"
	"io"
)

const maxFrame = 1 << 20

// ReadAllUnbounded slurps an arbitrary reader with no limit.
func ReadAllUnbounded(r io.Reader) ([]byte, error) {
	return io.ReadAll(r) // want "io.ReadAll without a bound"
}

// ReadAllLimited guards the read with io.LimitReader.
func ReadAllLimited(r io.Reader) ([]byte, error) {
	return io.ReadAll(io.LimitReader(r, maxFrame))
}

// ReadAllMemory reads an in-memory buffer, which is inherently bounded.
func ReadAllMemory(buf *bytes.Buffer) ([]byte, error) {
	return io.ReadAll(buf)
}

// AllocUnchecked allocates a frame sized straight off the wire.
func AllocUnchecked(hdr []byte) []byte {
	n := binary.BigEndian.Uint32(hdr)
	return make([]byte, n) // want "allocation sized by wire-decoded length .n. with no bounds check"
}

// AllocInline does the same without even naming the length.
func AllocInline(hdr []byte) []byte {
	return make([]byte, binary.BigEndian.Uint16(hdr)) // want "unchecked wire-decoded length"
}

// AllocChecked validates the length before allocating.
func AllocChecked(hdr []byte) []byte {
	n := binary.BigEndian.Uint32(hdr)
	if n > maxFrame {
		return nil
	}
	return make([]byte, n)
}
