// Package metrics is the metricname golden fixture: names missing the
// soapbinq_ prefix, the subsystem segment, or the kind's unit suffix
// are reported; conforming registrations are not.
package metrics

import "soapbinq/internal/obs"

const histName = "soapbinq_fixture_latency_ns"

var (
	goodCounter = obs.NewCounter("soapbinq_fixture_requests_total", "fixture requests")
	goodGauge   = obs.NewGauge("soapbinq_fixture_inflight_count", "fixture in-flight")
	goodHist    = obs.NewHistogram(histName, "fixture latency") // constant-folded names are auditable
	goodLabeled = obs.NewCounter("soapbinq_fixture_events_total", "fixture events", obs.L("kind", "demo"))

	badPrefix  = obs.NewCounter("fixture_requests_total", "missing prefix")            // want "does not match"
	badShape   = obs.NewCounter("soapbinq_requests_total", "missing subsystem")        // want "does not match"
	badCase    = obs.NewCounter("soapbinq_Fixture_requests_total", "uppercase")        // want "does not match"
	badCounter = obs.NewCounter("soapbinq_fixture_requests_count", "wrong unit")       // want "needs a Counter unit suffix"
	badGauge   = obs.NewGauge("soapbinq_fixture_inflight_total", "counter-ish gauge")  // want "needs a Gauge unit suffix"
	badHist    = obs.NewHistogram("soapbinq_fixture_latency_seconds", "seconds unit")  // want "needs a Histogram unit suffix"
)

// dynamicName builds a series name at run time, which the registry can
// only validate on the code path that reaches it.
func dynamicName(suffix string) *obs.Counter {
	return obs.NewCounter("soapbinq_fixture_"+suffix, "dynamic") // want "must be a constant string"
}

var _ = []any{goodCounter, goodGauge, goodHist, goodLabeled, badPrefix, badShape, badCase, badCounter, badGauge, badHist}
