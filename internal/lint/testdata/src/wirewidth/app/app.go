// Package app is the wirewidth applicability negative: it writes
// platform-width data with encoding/binary, but its import path does
// not end in a wire codec segment, so wirewidth stays silent.
package app

import (
	"bytes"
	"encoding/binary"
)

// Persist would trip wirewidth in a codec package.
func Persist(buf *bytes.Buffer, v int) error {
	return binary.Write(buf, binary.BigEndian, v)
}
