// Package xdr is the wirewidth golden fixture. Its import path ends in
// "xdr", a wire codec package: platform-width binary.Write/Read data
// and the unsafe import are reported; fixed-width data is not.
package xdr

import (
	"bytes"
	"encoding/binary"
	"unsafe" // want "must not import unsafe"
)

var _ = unsafe.Sizeof(0)

type header struct {
	Len   uint32
	Flags int // platform width hiding inside a struct
}

// PutInt encodes a bare platform-width int.
func PutInt(buf *bytes.Buffer, v int) error {
	return binary.Write(buf, binary.BigEndian, v) // want "binary.Write with platform-width integer data"
}

// PutHeader encodes a struct with a platform-width field.
func PutHeader(buf *bytes.Buffer, h header) error {
	return binary.Write(buf, binary.BigEndian, h) // want "binary.Write with platform-width integer data"
}

// GetInt decodes into a platform-width int.
func GetInt(r *bytes.Reader, v *int) error {
	return binary.Read(r, binary.BigEndian, v) // want "binary.Read with platform-width integer data"
}

// PutFixed encodes a fixed-width value; no finding.
func PutFixed(buf *bytes.Buffer, v uint64) error {
	return binary.Write(buf, binary.BigEndian, v)
}
