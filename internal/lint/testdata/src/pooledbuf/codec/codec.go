// Package codec exercises pooledbuf: allocation in //soaplint:hotpath
// functions is reported; the same allocations in unannotated functions
// and ignore-suppressed lines are not.
package codec

import "bytes"

// Encode is a hot-path encoder that allocates every which way.
//
//soaplint:hotpath
func Encode(v int64) []byte {
	buf := make([]byte, 0, 16) // want "make\(\[\]byte, \.\.\.\) in hot path Encode"
	var scratch bytes.Buffer   // want "bytes.Buffer declared in hot path Encode"
	w := &bytes.Buffer{}       // want "bytes.Buffer literal in hot path Encode"
	nb := new(bytes.Buffer)    // want "new\(bytes.Buffer\) in hot path Encode"
	scratch.WriteByte(byte(v))
	w.WriteByte(byte(v))
	nb.WriteByte(byte(v))
	return append(buf, scratch.Bytes()...)
}

// Grow documents a deliberate amortized allocation.
//
//soaplint:hotpath
func Grow(dst []byte, n int) []byte {
	//lint:ignore pooledbuf amortized growth slope, one reallocation per undersized buffer
	out := make([]byte, len(dst)+n)
	copy(out, dst)
	return out
}

// Cold is unannotated: cold paths may allocate freely.
func Cold() []byte {
	var buf bytes.Buffer
	buf.WriteString("cold")
	b := make([]byte, 8)
	return append(b, buf.Bytes()...)
}

// Ints is hot but allocates a non-byte slice, which is fine.
//
//soaplint:hotpath
func Ints(n int) []int64 {
	return make([]int64, n)
}
