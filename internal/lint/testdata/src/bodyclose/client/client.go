// Package client is the bodyclose golden fixture: responses whose Body
// is neither closed nor handed off are reported.
package client

import (
	"io"
	"net/http"
)

// Leak never closes the response body.
func Leak(url string) (bool, error) {
	resp, err := http.Get(url) // want "never closed on this path"
	if err != nil {
		return false, err
	}
	ok := resp.StatusCode == 200
	return ok, nil
}

// Discard drops the response entirely.
func Discard(url string) {
	http.Get(url) // want "discarded without closing its Body"
}

// DiscardBlank binds the response to the blank identifier.
func DiscardBlank(url string) error {
	_, err := http.Get(url) // want "discarded without closing its Body"
	return err
}

// Closed defers the close; no finding.
func Closed(url string) (int, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	return resp.StatusCode, nil
}

// Delegate hands the response to a consumer that assumes ownership.
func Delegate(url string) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	return drain(resp)
}

func drain(resp *http.Response) error {
	defer resp.Body.Close()
	_, err := io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	return err
}
