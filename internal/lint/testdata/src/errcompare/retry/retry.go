// Package retry is the errcompare golden fixture: identity comparison
// of errors and %v-formatted error wraps are reported; errors.Is, nil
// checks, %w wraps, and Is-method bodies are not.
package retry

import (
	"context"
	"errors"
	"fmt"
	"io"
)

// Classify compares sentinels by identity.
func Classify(err error) string {
	if err == io.EOF { // want "error compared with =="
		return "eof"
	}
	if err != io.ErrUnexpectedEOF { // want "error compared with !="
		return "other"
	}
	return "short"
}

// Switchy switches over the error value with a non-nil case.
func Switchy(err error) bool {
	switch err { // want "switch compares an error with =="
	case context.Canceled:
		return true
	}
	return false
}

// NilSwitch only distinguishes nil, which identity handles correctly.
func NilSwitch(err error) bool {
	switch err {
	case nil:
		return true
	}
	return false
}

// Matched uses errors.Is and a nil check: nothing to report.
func Matched(err error) bool {
	if err == nil {
		return false
	}
	return errors.Is(err, io.EOF)
}

// BadWrap formats an error with %v, severing the unwrap chain.
func BadWrap(err error) error {
	return fmt.Errorf("retry: %v", err) // want "error argument formatted with %v"
}

// GoodWrap keeps the chain matchable.
func GoodWrap(err error) error {
	return fmt.Errorf("retry: %w", err)
}

// GoodVerb formats a non-error with %v; no finding.
func GoodVerb(n int) error {
	return fmt.Errorf("retry attempt %v failed", n)
}

type tagErr struct{ code string }

func (e *tagErr) Error() string { return e.code }

// Is implements the errors.Is protocol; identity comparison here is the
// point and is exempt.
func (e *tagErr) Is(target error) bool {
	return target == io.EOF
}
