// Package svc is the faultcode golden fixture: faults built from string
// literals are reported; faults built from the declared constants (or
// values computed elsewhere) are not.
package svc

import "soapbinq/internal/soap"

// BadLit sets the code from an ad-hoc string in a keyed literal.
func BadLit() *soap.Fault {
	return &soap.Fault{Code: "ServerBlewUp", String: "boom"} // want "ad-hoc fault code"
}

// BadPositional does the same with a positional literal.
func BadPositional() soap.Fault {
	return soap.Fault{"Oops", "positional", ""} // want "ad-hoc fault code"
}

// BadAssign sets the code after construction.
func BadAssign(f *soap.Fault) {
	f.Code = "Client.Unknown" // want "ad-hoc fault code"
}

// GoodConst uses a declared constant.
func GoodConst() *soap.Fault {
	return &soap.Fault{Code: soap.FaultCodeClient, String: "bad request"}
}

// GoodAssign assigns a declared constant.
func GoodAssign(f *soap.Fault) {
	f.Code = soap.FaultCodeServer
}

// GoodComputed copies a code computed elsewhere; only literals are ad hoc.
func GoodComputed(f *soap.Fault, code string) {
	f.Code = code
}
