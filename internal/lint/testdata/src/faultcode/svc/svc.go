// Package svc is the faultcode golden fixture: faults built from string
// literals are reported; faults built from the declared constants (or
// values computed elsewhere) are not.
package svc

import (
	"time"

	"soapbinq/internal/soap"
)

// BadLit sets the code from an ad-hoc string in a keyed literal.
func BadLit() *soap.Fault {
	return &soap.Fault{Code: "ServerBlewUp", String: "boom"} // want "ad-hoc fault code"
}

// BadPositional does the same with a positional literal.
func BadPositional() soap.Fault {
	return soap.Fault{"Oops", "positional", ""} // want "ad-hoc fault code"
}

// BadAssign sets the code after construction.
func BadAssign(f *soap.Fault) {
	f.Code = "Client.Unknown" // want "ad-hoc fault code"
}

// GoodConst uses a declared constant.
func GoodConst() *soap.Fault {
	return &soap.Fault{Code: soap.FaultCodeClient, String: "bad request"}
}

// GoodAssign assigns a declared constant.
func GoodAssign(f *soap.Fault) {
	f.Code = soap.FaultCodeServer
}

// GoodComputed copies a code computed elsewhere; only literals are ad hoc.
func GoodComputed(f *soap.Fault, code string) {
	f.Code = code
}

// BadResilienceLit hand-rolls the load-shedding code instead of using
// the declared constant (or the BusyFault constructor).
func BadResilienceLit() *soap.Fault {
	return &soap.Fault{Code: "Server.Busy", String: "shed"} // want "ad-hoc fault code"
}

// GoodResilienceConsts uses the declared resilience fault codes.
func GoodResilienceConsts(f *soap.Fault) {
	f.Code = soap.FaultCodeBusy
	f.Code = soap.FaultCodeBreakerOpen
}

// GoodResilienceCtors builds resilience faults through their
// constructors, which own the code and the retry-after detail.
func GoodResilienceCtors() []*soap.Fault {
	return []*soap.Fault{
		soap.BusyFault(5 * time.Millisecond),
		soap.BreakerOpenFault(250 * time.Millisecond),
	}
}

// BadRouterLit hand-rolls a router fault code instead of using the
// declared constant (or the DrainingFault/NoBackendsFault constructors).
func BadRouterLit() *soap.Fault {
	return &soap.Fault{Code: "Server.Unavailable.NoBackends", String: "pool empty"} // want "ad-hoc fault code"
}

// GoodRouterConsts uses the declared router fault codes.
func GoodRouterConsts(f *soap.Fault) {
	f.Code = soap.FaultCodeDraining
	f.Code = soap.FaultCodeNoBackends
}

// GoodRouterCtors builds router faults through their constructors.
func GoodRouterCtors() []*soap.Fault {
	return []*soap.Fault{
		soap.DrainingFault(40 * time.Millisecond),
		soap.NoBackendsFault(90 * time.Millisecond),
	}
}
