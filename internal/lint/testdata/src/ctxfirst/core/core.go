// Package core is a ctxfirst golden fixture. Its import path ends in
// "core", so all three ctxfirst rules apply here.
package core

import (
	"context"
	"net"
)

// HandleOp takes a context, but not first.
func HandleOp(name string, ctx context.Context) error { // want "context must be the first parameter"
	_ = name
	return ctx.Err()
}

// Ping dials without giving the caller a way to bound it.
func Ping(addr string) error { // want "performs network I/O but takes no context.Context"
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return conn.Close()
}

// Probe performs I/O only transitively, through dial.
func Probe(addr string) error { // want "performs network I/O but takes no context.Context"
	return dial(addr)
}

// dial is unexported: it is the I/O source, but only exported entry
// points are required to take a context.
func dial(addr string) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return conn.Close()
}

// Send writes on an established connection; the write can block, so the
// exported entry point must accept a context.
func Send(conn net.Conn, b []byte) error { // want "performs network I/O but takes no context.Context"
	_, err := conn.Write(b)
	return err
}

// Fetch threads its context first and is exempt from every rule.
func Fetch(ctx context.Context, addr string) error {
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return err
	}
	return conn.Close()
}

// fallback mints a root context in library code.
func fallback() context.Context {
	return context.Background() // want "must not create a root context with context.Background"
}

// todo does the same with the other constructor.
func todo() context.Context {
	return context.TODO() // want "must not create a root context with context.TODO"
}

// legacy exercises the suppression directive: same violation as
// fallback, silenced with a reason.
func legacy() context.Context {
	//lint:ignore ctxfirst golden fixture exercising the suppression path
	return context.Background()
}

var _ = []any{fallback, todo, legacy}
