// Package util is the ctxfirst applicability negative: it dials without
// a context and mints a root context, but its import path ends in
// "util", outside the analyzer's jurisdiction, so nothing is reported.
package util

import (
	"context"
	"net"
)

// Dial would trip every ctxfirst rule in a guarded package.
func Dial(addr string) error {
	ctx := context.Background()
	_ = ctx
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return err
	}
	return conn.Close()
}
