package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment.
type ignoreDirective struct {
	file      string
	line      int      // the directive's own line
	analyzers []string // analyzer names, or ["all"]
	reason    string
}

// covers reports whether the directive suppresses the given diagnostic.
// A directive applies to its own line (trailing comment) and to the line
// immediately below it (comment above the offending statement).
func (d ignoreDirective) covers(diag Diagnostic) bool {
	if diag.Pos.Filename != d.file {
		return false
	}
	if diag.Pos.Line != d.line && diag.Pos.Line != d.line+1 {
		return false
	}
	for _, a := range d.analyzers {
		if a == "all" || a == diag.Analyzer {
			return true
		}
	}
	return false
}

const ignorePrefix = "//lint:ignore "

// collectIgnores scans all comments for ignore directives. Malformed
// directives (no analyzer list or no reason) are reported as diagnostics
// by the caller via Malformed.
func collectIgnores(fset *token.FileSet, files []*ast.File) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, ignorePrefix)
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					// Directive without a reason: ignore nothing, so the
					// underlying diagnostic still surfaces and the author
					// is forced to justify the suppression.
					continue
				}
				pos := fset.Position(c.Pos())
				out = append(out, ignoreDirective{
					file:      pos.Filename,
					line:      pos.Line,
					analyzers: strings.Split(fields[0], ","),
					reason:    strings.Join(fields[1:], " "),
				})
			}
		}
	}
	return out
}

// suppress drops diagnostics covered by a directive.
func suppress(diags []Diagnostic, directives []ignoreDirective) []Diagnostic {
	if len(directives) == 0 {
		return diags
	}
	kept := diags[:0]
	for _, d := range diags {
		covered := false
		for _, dir := range directives {
			if dir.covers(d) {
				covered = true
				break
			}
		}
		if !covered {
			kept = append(kept, d)
		}
	}
	return kept
}
