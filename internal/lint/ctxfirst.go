package lint

import (
	"go/ast"
	"go/types"
)

// CtxFirst enforces the context-first invocation invariant from DESIGN.md
// §5 on the wire-facing packages (core, pbio, soap — plus quality for the
// background-context rule):
//
//  1. A function that takes a context.Context takes it as the first
//     parameter.
//  2. An exported function that (transitively, within its package)
//     performs network I/O — dialing, HTTP client calls, reads or writes
//     on a net.Conn — must take a context.Context, so callers can bound
//     it. Compatibility wrappers are annotated with //lint:ignore.
//  3. Library code does not mint its own root contexts with
//     context.Background or context.TODO; the caller's context is the
//     only source of cancellation. (main packages and tests are exempt:
//     tests are never linted, and these packages are never package main.)
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "context.Context is first; exported I/O funcs take one; no context.Background in library code",
	Run:  runCtxFirst,
}

// ctxFirstPkgs are the package-path last segments the analyzer guards.
func ctxFirstApplies(path string) bool {
	switch pathLastSegment(path) {
	case "core", "pbio", "soap":
		return true
	}
	return false
}

func ctxBackgroundApplies(path string) bool {
	return ctxFirstApplies(path) || pathLastSegment(path) == "quality"
}

func runCtxFirst(pass *Pass) {
	path := pass.Pkg.Path()
	checkIO := ctxFirstApplies(path)
	checkBackground := ctxBackgroundApplies(path)
	if !checkIO && !checkBackground {
		return
	}

	netConn := lookupInterface(pass.Pkg, "net", "Conn")

	// Pass 1 over all declarations: parameter position, background
	// contexts, and the per-function base facts for the I/O propagation.
	type funcFacts struct {
		decl    *ast.FuncDecl
		callees []*types.Func
		baseIO  bool
	}
	facts := make(map[*types.Func]*funcFacts)

	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			checkCtxPosition(pass, fd, fn)
			f := &funcFacts{decl: fd}
			facts[fn] = f
			if fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeFunc(pass.Info, call)
				if callee == nil {
					return true
				}
				if checkBackground && (isPkgFunc(callee, "context", "Background") || isPkgFunc(callee, "context", "TODO")) {
					pass.Report(call.Pos(), "library code must not create a root context with context.%s; thread the caller's ctx", callee.Name())
				}
				if !checkIO {
					return true
				}
				if callee.Pkg() == pass.Pkg {
					f.callees = append(f.callees, callee)
				} else if isBlockingNetCall(callee) {
					f.baseIO = true
				}
				if isConnIO(pass.Info, call, netConn) {
					f.baseIO = true
				}
				return true
			})
		}
	}
	if !checkIO {
		return
	}

	// Fixed-point propagation of I/O-ness through the intra-package call
	// graph, then the exported-function check.
	io := make(map[*types.Func]bool)
	for fn, f := range facts {
		if f.baseIO {
			io[fn] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, f := range facts {
			if io[fn] {
				continue
			}
			for _, callee := range f.callees {
				if io[callee] {
					io[fn] = true
					changed = true
					break
				}
			}
		}
	}
	for fn, f := range facts {
		if !io[fn] || !fn.Exported() {
			continue
		}
		if hasCtxParam(fn) {
			continue
		}
		pass.Report(f.decl.Name.Pos(), "exported %s performs network I/O but takes no context.Context", fn.Name())
	}
}

// checkCtxPosition reports a context.Context parameter that is not first.
func checkCtxPosition(pass *Pass, fd *ast.FuncDecl, fn *types.Func) {
	sig := fn.Type().(*types.Signature)
	params := sig.Params()
	for i := 1; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			pass.Report(fd.Name.Pos(), "%s has context.Context as parameter %d; context must be the first parameter", fn.Name(), i+1)
		}
	}
}

func hasCtxParam(fn *types.Func) bool {
	params := fn.Type().(*types.Signature).Params()
	return params.Len() > 0 && isContextType(params.At(0).Type())
}

// isBlockingNetCall reports calls that open connections or run HTTP
// round trips — the operations a context must be able to abort. Accept
// and Close are deliberately excluded (lifecycle, not per-call I/O), as
// is net.Listen (binding returns immediately).
func isBlockingNetCall(fn *types.Func) bool {
	if fn.Pkg() == nil {
		return false
	}
	switch fn.Pkg().Path() {
	case "net":
		switch fn.Name() {
		case "Dial", "DialTimeout", "DialContext", "DialIP", "DialTCP", "DialUDP", "DialUnix":
			return true
		}
	case "net/http":
		switch fn.Name() {
		case "Do", "Get", "Post", "PostForm", "Head":
		default:
			return false
		}
		// Package-level http.Get/Post/... or a *http.Client method —
		// not just anything that happens to be called Get (http.Header
		// has one of those).
		recv := fn.Type().(*types.Signature).Recv()
		if recv == nil {
			return true
		}
		t := recv.Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj().Name() == "Client"
	}
	return false
}

// isConnIO reports method calls Read/Write/ReadFrom/WriteTo on a value
// whose static type implements net.Conn.
func isConnIO(info *types.Info, call *ast.CallExpr, netConn *types.Interface) bool {
	if netConn == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Read", "Write", "ReadFrom", "WriteTo":
	default:
		return false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return false
	}
	return types.Implements(tv.Type, netConn) || types.Implements(types.NewPointer(tv.Type), netConn)
}

// lookupInterface finds a named interface in the (transitive) imports of
// pkg, or nil when the package never touches it.
func lookupInterface(pkg *types.Package, pkgPath, name string) *types.Interface {
	var find func(p *types.Package, seen map[*types.Package]bool) *types.Package
	find = func(p *types.Package, seen map[*types.Package]bool) *types.Package {
		if seen[p] {
			return nil
		}
		seen[p] = true
		for _, imp := range p.Imports() {
			if imp.Path() == pkgPath {
				return imp
			}
			if found := find(imp, seen); found != nil {
				return found
			}
		}
		return nil
	}
	netPkg := find(pkg, map[*types.Package]bool{})
	if netPkg == nil {
		return nil
	}
	obj := netPkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}
