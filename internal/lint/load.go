package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Loader parses and type-checks packages of one module. Imports within
// the module resolve against the module root; everything else (the
// standard library) resolves through go/importer's source importer, so
// the whole pipeline needs no compiled export data and no x/tools.
//
// A Loader caches type-checked packages and is not safe for concurrent
// use.
type Loader struct {
	ModuleRoot string
	ModulePath string

	fset   *token.FileSet
	std    types.ImporterFrom
	pkgs   map[string]*Package // by import path
	loading map[string]bool    // import cycle guard
}

// NewLoader builds a loader for the module rooted at dir (the directory
// containing go.mod).
func NewLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer type-checks dependencies from GOROOT source;
	// with cgo disabled, packages like net use their pure-Go fallbacks,
	// which is all the type information an analyzer needs.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Loader{
		ModuleRoot: root,
		ModulePath: modPath,
		fset:       fset,
		std:        std,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// Load parses and type-checks the package in dir under the given import
// path. Test files (_test.go) are excluded: the invariants guard
// production code, and tests legitimately use context.Background and
// fixed byte soups.
func (l *Loader) Load(dir, importPath string) (*Package, error) {
	if pkg, ok := l.pkgs[importPath]; ok {
		return pkg, nil
	}
	if l.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %q", importPath)
	}
	l.loading[importPath] = true
	defer delete(l.loading, importPath)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: importerFunc{l, dir},
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(importPath, l.fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-check %s: %w", importPath, typeErrs[0])
	}
	pkg := &Package{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       l.fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	l.pkgs[importPath] = pkg
	return pkg, nil
}

// parseDir parses every non-test Go file of dir, sorted by name for
// deterministic diagnostics.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// importerFunc adapts the loader to types.Importer for one importing
// directory.
type importerFunc struct {
	l   *Loader
	dir string
}

func (f importerFunc) Import(path string) (*types.Package, error) {
	return f.ImportFrom(path, f.dir, 0)
}

func (f importerFunc) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := f.l
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.Load(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, dir, mode)
}

// ExpandPatterns resolves soaplint's command-line patterns relative to
// the module root into (dir, importPath) pairs. Supported forms: "./..."
// and "./dir/..." recursive patterns, and plain relative directories.
// testdata directories, hidden directories, and directories without Go
// files are skipped.
func (l *Loader) ExpandPatterns(patterns []string) ([][2]string, error) {
	seen := make(map[string]bool)
	var out [][2]string
	add := func(dir string) error {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if seen[rel] {
			return nil
		}
		seen[rel] = true
		importPath := l.ModulePath
		if rel != "." {
			importPath += "/" + rel
		}
		out = append(out, [2]string{dir, importPath})
		return nil
	}
	for _, pat := range patterns {
		pat = filepath.ToSlash(pat)
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" || pat == "." {
				pat = "."
			}
		}
		base := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimPrefix(pat, "./")))
		if !recursive {
			if !hasGoFiles(base) {
				return nil, fmt.Errorf("lint: no Go files in %s", base)
			}
			if err := add(base); err != nil {
				return nil, err
			}
			continue
		}
		err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(p) {
				return add(p)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// FindModuleRoot walks up from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		dir = parent
	}
}
