package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FaultCode enforces the declared-fault-code invariant: every
// soap.Fault's Code field is one of the constants declared in the soap
// package (FaultCodeClient, FaultCodeServer, FaultCodeDeadlineExceeded,
// ...), never an ad-hoc string literal. Ad-hoc codes silently escape the
// errors.Is mapping and the client-side fault taxonomy.
var FaultCode = &Analyzer{
	Name: "faultcode",
	Doc:  "soap.Fault codes come from declared constants, not string literals",
	Run:  runFaultCode,
}

func runFaultCode(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.CompositeLit:
				checkFaultLit(pass, node)
			case *ast.AssignStmt:
				checkFaultAssign(pass, node)
			}
			return true
		})
	}
}

// isSoapFault reports whether t is (a pointer to) the soap package's
// Fault struct. Matching by package-path suffix keeps the analyzer
// independent of the module path.
func isSoapFault(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Fault" || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == "soap" || strings.HasSuffix(path, "/soap")
}

func checkFaultLit(pass *Pass, lit *ast.CompositeLit) {
	tv, ok := pass.Info.Types[lit]
	if !ok || !isSoapFault(tv.Type) {
		return
	}
	for i, elt := range lit.Elts {
		var value ast.Expr
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "Code" {
				continue
			}
			value = kv.Value
		} else if i == 0 {
			// Positional literal: Code is the first field.
			value = elt
		} else {
			continue
		}
		reportAdHocCode(pass, value)
	}
}

// checkFaultAssign catches `f.Code = "..."` on a fault value.
func checkFaultAssign(pass *Pass, assign *ast.AssignStmt) {
	for i, lhs := range assign.Lhs {
		sel, ok := lhs.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Code" || i >= len(assign.Rhs) {
			continue
		}
		tv, ok := pass.Info.Types[sel.X]
		if !ok || !isSoapFault(tv.Type) {
			continue
		}
		if len(assign.Rhs) == len(assign.Lhs) {
			reportAdHocCode(pass, assign.Rhs[i])
		}
	}
}

func reportAdHocCode(pass *Pass, value ast.Expr) {
	lit, ok := ast.Unparen(value).(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return // identifiers, selectors, and computed codes are fine
	}
	pass.Report(lit.Pos(), "ad-hoc fault code %s; use a declared soap.FaultCode constant", lit.Value)
}
