package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestGolden runs the full analyzer suite over every package under
// testdata/src and checks the diagnostics against the `// want "regex"`
// comments in the sources: every diagnostic must be wanted, and every
// want must be matched, line by line.
func TestGolden(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	src := filepath.Join(root, "internal", "lint", "testdata", "src")
	pkgs := goldenPackages(t, src)
	if len(pkgs) == 0 {
		t.Fatal("no golden packages under testdata/src")
	}
	for _, dir := range pkgs {
		rel, _ := filepath.Rel(src, dir)
		importPath := filepath.ToSlash(rel)
		t.Run(importPath, func(t *testing.T) {
			pkg, err := loader.Load(dir, importPath)
			if err != nil {
				t.Fatal(err)
			}
			diags := Run(pkg, Analyzers())
			checkWants(t, dir, diags)
		})
	}
}

// goldenPackages finds every directory under src containing Go files.
func goldenPackages(t *testing.T, src string) []string {
	var dirs []string
	err := filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() && hasGoFiles(p) {
			dirs = append(dirs, p)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

var wantRe = regexp.MustCompile(`// want "([^"]*)"`)

// checkWants compares diagnostics against want comments in dir's files.
func checkWants(t *testing.T, dir string, diags []Diagnostic) {
	type want struct {
		re      *regexp.Regexp
		matched bool
	}
	// wants[file][line] = expectations on that line.
	wants := make(map[string]map[int][]*want)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			for _, m := range wantRe.FindAllStringSubmatch(line, -1) {
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want regexp %q: %v", path, i+1, m[1], err)
				}
				if wants[path] == nil {
					wants[path] = make(map[int][]*want)
				}
				wants[path][i+1] = append(wants[path][i+1], &want{re: re})
			}
		}
	}
	for _, d := range diags {
		if !strings.HasPrefix(d.Pos.Filename, dir+string(filepath.Separator)) {
			continue // diagnostics in imported packages are not this test's
		}
		lineWants := wants[d.Pos.Filename][d.Pos.Line]
		found := false
		for _, w := range lineWants {
			if w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for file, lines := range wants {
		for line, ws := range lines {
			for _, w := range ws {
				if !w.matched {
					t.Errorf("%s:%d: no diagnostic matched want %q", file, line, w.re)
				}
			}
		}
	}
}
