package lint

import (
	"go/ast"
	"go/types"
)

// BoundedRead enforces the bounded-ingest invariant on untrusted input:
//
//   - io.ReadAll is only called on inherently bounded readers (in-memory
//     buffers) or through an explicit guard (io.LimitReader,
//     http.MaxBytesReader). An unguarded ReadAll on a connection lets a
//     hostile peer allocate without limit.
//   - A buffer allocated with make([]byte, n), where n was decoded from
//     the wire (a binary.ByteOrder integer read), must be bounds-checked
//     before the allocation — the receiver-makes-right frame decoders'
//     "validate length, then allocate" discipline.
var BoundedRead = &Analyzer{
	Name: "boundedread",
	Doc:  "wire reads are bounded: no unguarded io.ReadAll, no unchecked frame-length allocations",
	Run:  runBoundedRead,
}

func runBoundedRead(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkReadAlls(pass, fd.Body)
			checkWireMakes(pass, fd.Body)
		}
	}
}

func checkReadAlls(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := calleeFunc(pass.Info, call)
		if !isPkgFunc(callee, "io", "ReadAll") || len(call.Args) != 1 {
			return true
		}
		if isBoundedReader(pass.Info, call.Args[0]) {
			return true
		}
		pass.Report(call.Pos(), "io.ReadAll without a bound; wrap the reader in io.LimitReader (or http.MaxBytesReader)")
		return true
	})
}

// isBoundedReader reports readers that cannot be unbounded: explicit
// limit guards and in-memory readers.
func isBoundedReader(info *types.Info, arg ast.Expr) bool {
	arg = ast.Unparen(arg)
	if call, ok := arg.(*ast.CallExpr); ok {
		callee := calleeFunc(info, call)
		if isPkgFunc(callee, "io", "LimitReader") ||
			isPkgFunc(callee, "net/http", "MaxBytesReader") ||
			isPkgFunc(callee, "bytes", "NewReader") ||
			isPkgFunc(callee, "bytes", "NewBuffer") ||
			isPkgFunc(callee, "bytes", "NewBufferString") ||
			isPkgFunc(callee, "strings", "NewReader") {
			return true
		}
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	return isInMemoryReader(tv.Type)
}

func isInMemoryReader(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() + "." + obj.Name() {
	case "bytes.Buffer", "bytes.Reader", "strings.Reader", "io.LimitedReader":
		return true
	}
	return false
}

// checkWireMakes flags make([]byte, n) where n came off the wire and is
// never compared against a bound in the enclosing function.
func checkWireMakes(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "make" || len(call.Args) < 2 {
			return true
		}
		if _, isBuiltin := pass.Info.Uses[fun].(*types.Builtin); !isBuiltin {
			return true
		}
		lenExpr := ast.Unparen(call.Args[1])
		// Inline, unnamed wire length: make([]byte, int(order.Uint32(b))).
		if exprReadsWire(pass.Info, lenExpr) {
			pass.Report(call.Pos(), "allocation sized by an unchecked wire-decoded length; validate it against a maximum first")
			return true
		}
		id, ok := lenExpr.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if !wireDerived(pass.Info, body, obj) {
			return true
		}
		if comparedSomewhere(pass.Info, body, obj) {
			return true
		}
		pass.Report(call.Pos(), "allocation sized by wire-decoded length %q with no bounds check in this function", id.Name)
		return true
	})
}

// exprReadsWire reports whether e contains a binary.ByteOrder integer
// decode (Uint16/Uint32/Uint64 call on an encoding/binary value).
func exprReadsWire(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Uint16", "Uint32", "Uint64":
		default:
			return true
		}
		fn, _ := info.Uses[sel.Sel].(*types.Func)
		if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "encoding/binary" {
			found = true
			return false
		}
		// Method on a binary.ByteOrder interface value (e.g. d.order).
		if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
			if named, ok := tv.Type.(*types.Named); ok {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "encoding/binary" {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// wireDerived reports whether obj's defining assignment reads the wire.
func wireDerived(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	derived := false
	ast.Inspect(body, func(n ast.Node) bool {
		assign, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range assign.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || info.Defs[id] != obj {
				continue
			}
			rhs := assign.Rhs[0]
			if len(assign.Rhs) == len(assign.Lhs) {
				rhs = assign.Rhs[i]
			}
			if exprReadsWire(info, rhs) {
				derived = true
				return false
			}
		}
		return true
	})
	return derived
}

// comparedSomewhere reports whether obj appears in any comparison in the
// function — the signature of a length check.
func comparedSomewhere(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	compared := false
	ast.Inspect(body, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || !be.Op.IsOperator() {
			return true
		}
		switch be.Op.String() {
		case "<", ">", "<=", ">=", "==", "!=":
		default:
			return true
		}
		for _, side := range []ast.Expr{be.X, be.Y} {
			referenced := false
			ast.Inspect(side, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && info.Uses[id] == obj {
					referenced = true
					return false
				}
				return true
			})
			if referenced {
				compared = true
				return false
			}
		}
		return true
	})
	return compared
}
