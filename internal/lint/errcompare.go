package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// ErrCompare enforces errors.Is-based error matching. Fault and context
// errors travel through wrapping layers (retry policies, transports), so
// pointer identity comparison silently stops matching:
//
//   - err == sentinel / err != sentinel on error-typed operands is
//     reported (compare with errors.Is); switch statements over an error
//     value with non-nil cases likewise.
//   - fmt.Errorf formatting an error argument with %v or %s is reported
//     (wrap with %w so the chain stays matchable).
//
// The one place identity comparison is the point — the body of an
// `Is(error) bool` method, which implements the errors.Is protocol — is
// exempt.
var ErrCompare = &Analyzer{
	Name: "errcompare",
	Doc:  "errors are matched with errors.Is and wrapped with %w, never compared with ==",
	Run:  runErrCompare,
}

func runErrCompare(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isErrorsIsMethod(pass.Info, fd) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch node := n.(type) {
				case *ast.BinaryExpr:
					checkErrEquality(pass, node)
				case *ast.SwitchStmt:
					checkErrSwitch(pass, node)
				case *ast.CallExpr:
					checkErrorfWrap(pass, node)
				}
				return true
			})
		}
	}
}

// isErrorsIsMethod matches `func (x T) Is(target error) bool`.
func isErrorsIsMethod(info *types.Info, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || fd.Name.Name != "Is" {
		return false
	}
	fn, _ := info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	sig := fn.Type().(*types.Signature)
	return sig.Params().Len() == 1 && isErrorType(sig.Params().At(0).Type()) &&
		sig.Results().Len() == 1 && types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool])
}

func isNilIdent(info *types.Info, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	_, isNil := info.Uses[id].(*types.Nil)
	return isNil
}

func checkErrEquality(pass *Pass, be *ast.BinaryExpr) {
	if be.Op != token.EQL && be.Op != token.NEQ {
		return
	}
	if isNilIdent(pass.Info, be.X) || isNilIdent(pass.Info, be.Y) {
		return
	}
	xt, xok := pass.Info.Types[be.X]
	yt, yok := pass.Info.Types[be.Y]
	if !xok || !yok || xt.Type == nil || yt.Type == nil {
		return
	}
	if isErrorType(xt.Type) || isErrorType(yt.Type) {
		pass.Report(be.OpPos, "error compared with %s; use errors.Is, which matches through wrapping", be.Op)
	}
}

func checkErrSwitch(pass *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil {
		return
	}
	tv, ok := pass.Info.Types[sw.Tag]
	if !ok || tv.Type == nil || !isErrorType(tv.Type) {
		return
	}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, e := range cc.List {
			if !isNilIdent(pass.Info, e) {
				pass.Report(sw.Switch, "switch compares an error with ==; use errors.Is, which matches through wrapping")
				return
			}
		}
	}
}

// checkErrorfWrap matches fmt.Errorf verbs to arguments and reports
// error-typed arguments formatted with %v or %s.
func checkErrorfWrap(pass *Pass, call *ast.CallExpr) {
	callee := calleeFunc(pass.Info, call)
	if !isPkgFunc(callee, "fmt", "Errorf") || len(call.Args) < 2 {
		return
	}
	tv, ok := pass.Info.Types[call.Args[0]]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	format := constant.StringVal(tv.Value)
	verbs, ok := formatVerbs(format)
	if !ok || len(verbs) != len(call.Args)-1 {
		return // indexed or variadic-spread formats: out of scope
	}
	for i, verb := range verbs {
		if verb != 'v' && verb != 's' {
			continue
		}
		arg := call.Args[i+1]
		at, ok := pass.Info.Types[arg]
		if !ok || at.Type == nil || !isErrorType(at.Type) {
			continue
		}
		pass.Report(arg.Pos(), "error argument formatted with %%%c; use %%w so errors.Is keeps matching through the wrap", verb)
	}
}

// formatVerbs extracts the verb letters of a format string in order.
// ok is false for explicit argument indexes ("%[1]v"), which this
// analyzer does not model.
func formatVerbs(format string) ([]byte, bool) {
	var verbs []byte
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i < len(format) && format[i] == '%' {
			continue
		}
		// Skip flags, width, and precision.
		for i < len(format) {
			c := format[i]
			if c == '[' {
				return nil, false
			}
			if (c >= '0' && c <= '9') || c == '+' || c == '-' || c == '#' || c == ' ' || c == '.' {
				i++
				continue
			}
			break
		}
		if i < len(format) {
			verbs = append(verbs, format[i])
		}
	}
	return verbs, true
}
