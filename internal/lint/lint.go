// Package lint is soaplint's analysis framework: a small, stdlib-only
// (go/parser, go/ast, go/types, go/importer — no x/tools) driver for
// project-specific analyzers that enforce the invariants DESIGN.md
// documents: context-first I/O, declared fault codes, bounded reads of
// untrusted input, errors.Is-based error matching, fixed-width wire
// encoding, and closed response bodies.
//
// An Analyzer inspects one type-checked package (a Pass) and reports
// Diagnostics. Deliberate violations are suppressed in source with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// which silences the named analyzers (or "all") on the directive's line
// and the line below it; the reason is mandatory.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one invariant checker.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and ignore directives.
	Name string
	// Doc is a one-line description of the invariant enforced.
	Doc string
	// Run inspects the pass and reports findings via pass.Report.
	Run func(*Pass)
}

// Pass is one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats a diagnostic the way the soaplint CLI prints it.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run applies every analyzer to a loaded package and returns the surviving
// diagnostics (ignore directives applied), sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			diags:    &diags,
		}
		a.Run(pass)
	}
	diags = suppress(diags, collectIgnores(pkg.Fset, pkg.Files))
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].Pos, diags[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// Analyzers returns the full soaplint suite.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		CtxFirst,
		FaultCode,
		BoundedRead,
		ErrCompare,
		WireWidth,
		BodyClose,
		PooledBuf,
		MetricName,
	}
}

// pathLastSegment returns the final slash-separated element of an import
// path ("soapbinq/internal/pbio" → "pbio").
func pathLastSegment(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// isErrorType reports whether t is the built-in error interface type (not
// merely a type implementing it: sentinel comparisons of concrete types
// are resolvable statically and not what errcompare is after).
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// calleeFunc resolves the *types.Func a call expression invokes, or nil
// for calls through function values, built-ins, and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// isPkgFunc reports whether fn is the named function (or method) from the
// package with the given import path.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}
