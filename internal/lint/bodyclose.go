package lint

import (
	"go/ast"
	"go/types"
)

// BodyClose enforces that every *http.Response obtained in a function is
// either closed there (resp.Body.Close(), deferred or not) or handed off
// (returned, or passed to another function that assumes ownership). A
// leaked body pins the connection and, at production call rates, starves
// the client's connection pool.
var BodyClose = &Analyzer{
	Name: "bodyclose",
	Doc:  "every http.Response.Body is closed (or the response handed off) in the acquiring function",
	Run:  runBodyClose,
}

func runBodyClose(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBodies(pass, fd.Body)
		}
	}
}

func checkBodies(pass *Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range node.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !returnsHTTPResponse(pass.Info, call) {
					continue
				}
				// resp, err := client.Do(req) — the response is result 0,
				// so with multiple RHS values indexes align; with one
				// call RHS, the response binds to the first LHS.
				if i >= len(node.Lhs) {
					continue
				}
				id, ok := node.Lhs[i].(*ast.Ident)
				if !ok || id.Name == "_" {
					pass.Report(call.Pos(), "http response discarded without closing its Body")
					continue
				}
				obj := pass.Info.Defs[id]
				if obj == nil {
					obj = pass.Info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if !bodyClosedOrEscapes(pass.Info, body, obj) {
					pass.Report(call.Pos(), "http.Response %q is never closed on this path; defer %s.Body.Close()", id.Name, id.Name)
				}
			}
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(node.X).(*ast.CallExpr); ok && returnsHTTPResponse(pass.Info, call) {
				pass.Report(call.Pos(), "http response discarded without closing its Body")
			}
		}
		return true
	})
}

// returnsHTTPResponse reports whether the call's first result is
// *net/http.Response.
func returnsHTTPResponse(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(0).Type()
	}
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Response" && obj.Pkg() != nil && obj.Pkg().Path() == "net/http"
}

// bodyClosedOrEscapes scans for resp.Body.Close() on obj, or for obj
// escaping the function (returned or passed as a call argument), which
// transfers the close obligation.
func bodyClosedOrEscapes(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	done := false
	ast.Inspect(body, func(n ast.Node) bool {
		if done {
			return false
		}
		switch node := n.(type) {
		case *ast.CallExpr:
			if isBodyCloseOn(info, node, obj) {
				done = true
				return false
			}
			for _, arg := range node.Args {
				if exprUsesObj(info, arg, obj) && !isBodySelector(info, arg, obj) {
					done = true // handed to another function
					return false
				}
			}
		case *ast.ReturnStmt:
			for _, res := range node.Results {
				if exprUsesObj(info, res, obj) {
					done = true
					return false
				}
			}
		case *ast.AssignStmt:
			// Stored into a struct field or another variable: handed off.
			for _, rhs := range node.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && info.Uses[id] == obj {
					done = true
					return false
				}
			}
		}
		return true
	})
	return done
}

// isBodyCloseOn matches obj.Body.Close().
func isBodyCloseOn(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return false
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok || inner.Sel.Name != "Body" {
		return false
	}
	id, ok := ast.Unparen(inner.X).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

// isBodySelector matches resp.Body (or deeper selections on resp) used
// as a plain argument — reading the body does not discharge the close
// obligation.
func isBodySelector(info *types.Info, e ast.Expr, obj types.Object) bool {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && info.Uses[id] == obj
}

func exprUsesObj(info *types.Info, e ast.Expr, obj types.Object) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			used = true
			return false
		}
		return true
	})
	return used
}
