package lint

import "testing"

// TestRepoLintClean asserts the invariant `make lint` enforces: running
// every analyzer over every package in the module produces zero
// diagnostics. A regression in guarded code (say, dropping a LimitReader
// bound) fails this test even before CI runs soaplint itself.
func TestRepoLintClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	targets, err := loader.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) < 10 {
		t.Fatalf("expanded only %d packages from ./...; pattern expansion is broken", len(targets))
	}
	analyzers := Analyzers()
	for _, target := range targets {
		pkg, err := loader.Load(target[0], target[1])
		if err != nil {
			t.Fatalf("load %s: %v", target[1], err)
		}
		for _, d := range Run(pkg, analyzers) {
			t.Errorf("%s", d)
		}
	}
}
