module soapbinq

go 1.22
