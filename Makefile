GO ?= go

.PHONY: check build vet test race bench

# The tier-1 gate: everything must build, vet clean, and pass the full
# suite under the race detector (the context/cancellation paths are
# concurrency-heavy; -race is not optional here).
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Regenerate every table/figure of the paper's evaluation (quick pass).
bench:
	$(GO) run ./cmd/soapbench -all -quick
