GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet test race chaos chaos-front bench bench-paper bench-compare lint fuzz-smoke obs-smoke

# The tier-1 gate: everything must build, vet clean, pass the full
# suite under the race detector (the context/cancellation paths are
# concurrency-heavy; -race is not optional here), survive the seeded
# chaos suite and the router chaos suite, lint clean under the repo's
# own analyzer suite, and expose the observability surface end to end.
check: build vet race chaos chaos-front lint obs-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Deterministic fault-injection suite over real sockets: scripted
# refusals, resets, stalls, corruption, 503 bursts, and duplicates
# driving the breaker, the load shedder, and quality degradation.
# -count=1 defeats the test cache — chaos runs must actually run.
chaos:
	$(GO) test -race -count=1 -run 'Chaos' ./internal/faultinject ./internal/core ./internal/netem

# Router chaos suite over real sockets: four backends behind soapfront,
# hundreds of concurrent callers, and the scenario family from the
# fault model — backend death mid-flight, flap, gray failure
# (blackhole), drain-under-load, partition. Idempotent callers must see
# zero non-fault errors through every scenario.
chaos-front:
	$(GO) test -race -count=1 -run 'FrontChaos' ./internal/front

# The repo's own stdlib-only analyzer suite (see internal/lint): wire
# width, bounded reads, context discipline, fault codes, error matching,
# response-body hygiene. Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/soaplint ./...

# Observability smoke: an instrumented echo rig with the debug mux
# attached, driven and then scraped the way an operator would — every
# expected metric family must appear in /metrics and /debug/quality
# must return client/server spans correlated by trace ID.
obs-smoke:
	$(GO) run ./cmd/soapbench -obssmoke

# Short fuzz pass over the three untrusted-input parsers. FUZZTIME=10s
# keeps it CI-sized; raise it locally for a real hunt.
fuzz-smoke:
	$(GO) test ./internal/pbio -run '^$$' -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xmlenc -run '^$$' -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/soap -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)

# Measure the zero-allocation wire hot path (codec plans, pooled
# buffers and value slabs, multiplexed TCP pool) with -benchmem
# semantics and record BENCH_pr4.json: ns/op, B/op, allocs/op for the
# codec and the pooled echo round trip, plus throughput and p50/p99 RTT
# at 1/8/64 concurrent callers over real TCP.
bench:
	$(GO) run ./cmd/soapbench -hotpath -benchout BENCH_pr4.json

# Re-measure and check against the recorded BENCH_pr4.json; fails on
# allocation regressions (timing columns are advisory).
bench-compare:
	$(GO) run ./cmd/soapbench -hotpath -quick -compare -benchout BENCH_pr4.json

# Regenerate every table/figure of the paper's evaluation (quick pass).
bench-paper:
	$(GO) run ./cmd/soapbench -all -quick
