GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet test race bench lint fuzz-smoke

# The tier-1 gate: everything must build, vet clean, pass the full
# suite under the race detector (the context/cancellation paths are
# concurrency-heavy; -race is not optional here), and lint clean under
# the repo's own analyzer suite.
check: build vet race lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The repo's own stdlib-only analyzer suite (see internal/lint): wire
# width, bounded reads, context discipline, fault codes, error matching,
# response-body hygiene. Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/soaplint ./...

# Short fuzz pass over the three untrusted-input parsers. FUZZTIME=10s
# keeps it CI-sized; raise it locally for a real hunt.
fuzz-smoke:
	$(GO) test ./internal/pbio -run '^$$' -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xmlenc -run '^$$' -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/soap -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)

# Regenerate every table/figure of the paper's evaluation (quick pass).
bench:
	$(GO) run ./cmd/soapbench -all -quick
