GO ?= go
FUZZTIME ?= 10s

.PHONY: check build vet test race chaos bench lint fuzz-smoke

# The tier-1 gate: everything must build, vet clean, pass the full
# suite under the race detector (the context/cancellation paths are
# concurrency-heavy; -race is not optional here), survive the seeded
# chaos suite, and lint clean under the repo's own analyzer suite.
check: build vet race chaos lint

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Deterministic fault-injection suite over real sockets: scripted
# refusals, resets, stalls, corruption, 503 bursts, and duplicates
# driving the breaker, the load shedder, and quality degradation.
# -count=1 defeats the test cache — chaos runs must actually run.
chaos:
	$(GO) test -race -count=1 -run 'Chaos' ./internal/faultinject ./internal/core ./internal/netem

# The repo's own stdlib-only analyzer suite (see internal/lint): wire
# width, bounded reads, context discipline, fault codes, error matching,
# response-body hygiene. Exits non-zero on any finding.
lint:
	$(GO) run ./cmd/soaplint ./...

# Short fuzz pass over the three untrusted-input parsers. FUZZTIME=10s
# keeps it CI-sized; raise it locally for a real hunt.
fuzz-smoke:
	$(GO) test ./internal/pbio -run '^$$' -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/xmlenc -run '^$$' -fuzz '^FuzzUnmarshal$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/soap -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME)

# Regenerate every table/figure of the paper's evaluation (quick pass).
bench:
	$(GO) run ./cmd/soapbench -all -quick
