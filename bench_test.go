package soapbinq

import (
	"context"
	"io"
	"testing"

	"soapbinq/internal/bench"
	"soapbinq/internal/core"
	"soapbinq/internal/pbio"
	"soapbinq/internal/workload"
	"soapbinq/internal/xdr"
	"soapbinq/internal/xmlenc"
)

// One benchmark per paper table/figure, each delegating to the shared
// experiment engine in quick mode (full-size regeneration is
// `go run ./cmd/soapbench -all`). The per-op numbers these report are the
// wall time of one complete experiment run.

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := bench.Run(id, io.Discard, true); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4aSunRPCvsSOAPBinArrays(b *testing.B)  { benchExperiment(b, "fig4a") }
func BenchmarkFig4bSunRPCvsSOAPBinStructs(b *testing.B) { benchExperiment(b, "fig4b") }
func BenchmarkFig5SizesAndCodecCosts(b *testing.B)      { benchExperiment(b, "fig5sizes") }
func BenchmarkFig5ArraysOverLinks(b *testing.B)         { benchExperiment(b, "fig5") }
func BenchmarkFig6StructsOverLinks(b *testing.B)        { benchExperiment(b, "fig6") }
func BenchmarkFig7ThreeModes(b *testing.B)              { benchExperiment(b, "fig7") }
func BenchmarkFig8ImagingAdaptation(b *testing.B)       { benchExperiment(b, "fig8") }
func BenchmarkFig9MoldynBatching(b *testing.B)          { benchExperiment(b, "fig9") }
func BenchmarkTable1AirlineEventRates(b *testing.B)     { benchExperiment(b, "table1") }
func BenchmarkVizPortalResponse(b *testing.B)           { benchExperiment(b, "viz") }
func BenchmarkHeadline1MBTransmission(b *testing.B)     { benchExperiment(b, "headline") }

// Ablation experiments (design choices isolated; see EXPERIMENTS.md).
func BenchmarkAblationFormatCache(b *testing.B) { benchExperiment(b, "ablation-cache") }
func BenchmarkAblationHysteresis(b *testing.B)  { benchExperiment(b, "ablation-hysteresis") }
func BenchmarkAblationRMR(b *testing.B)         { benchExperiment(b, "ablation-rmr") }

// ---- codec microbenchmarks (per-operation costs) ----

func newBenchCodec() (*pbio.Codec, *pbio.Codec) {
	fs := pbio.NewMemServer()
	return pbio.NewCodec(pbio.NewRegistry(fs)), pbio.NewCodec(pbio.NewRegistry(fs))
}

func BenchmarkPBIOMarshalArray64K(b *testing.B) {
	enc, _ := newBenchCodec()
	v := workload.IntArray(8192) // 64 KB payload
	b.SetBytes(int64(pbio.EncodedSize(v)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Marshal(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPBIOUnmarshalArray64K(b *testing.B) {
	enc, dec := newBenchCodec()
	v := workload.IntArray(8192)
	msg, err := enc.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Unmarshal(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPBIOMarshalNestedStruct(b *testing.B) {
	enc, _ := newBenchCodec()
	v := workload.NestedStruct(8, 4)
	b.SetBytes(int64(pbio.EncodedSize(v)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.Marshal(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPBIOUnmarshalNestedStruct(b *testing.B) {
	enc, dec := newBenchCodec()
	v := workload.NestedStruct(8, 4)
	msg, err := enc.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(msg)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dec.Unmarshal(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXMLMarshalArray64K(b *testing.B) {
	v := workload.IntArray(8192)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xmlenc.Marshal("v", v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXMLUnmarshalArray64K(b *testing.B) {
	v := workload.IntArray(8192)
	doc, err := xmlenc.Marshal("v", v)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xmlenc.Unmarshal(doc, "v", v.Type); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXDRMarshalArray64K(b *testing.B) {
	v := workload.IntArray(8192)
	b.SetBytes(int64(xdr.EncodedSize(v)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xdr.Marshal(v); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeflateXMLArray64K(b *testing.B) {
	v := workload.IntArray(8192)
	doc, err := xmlenc.Marshal("v", v)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(doc)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Deflate(doc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQualityMiddlewareOverhead measures what the binQ layer adds to
// an invocation when no downgrade happens (the common fast-link case):
// timestamp echo, estimate bookkeeping, selection.
func BenchmarkQualityMiddlewareOverhead(b *testing.B) {
	fs := NewMemFormatServer()
	full := StructT("BFull", F("n", Int()), F("pad", List(Char())))
	small := StructT("BSmall", F("n", Int()))
	types := map[string]*Type{"BFull": full, "BSmall": small}
	policy, err := ParseQualityPolicy("attribute rtt\n0 inf BFull\n", types, nil)
	if err != nil {
		b.Fatal(err)
	}
	pad := make([]Value, 512)
	for i := range pad {
		pad[i] = CharV(byte(i))
	}
	val := StructV(full, IntV(1), Value{Type: List(Char()), List: pad})

	spec := MustServiceSpec("QB", &OpDef{Name: "get", Result: full})
	srv := NewEndpoint(fs).NewServer(spec)
	srv.MustHandle("get", QualityMiddleware(policy, nil, func(*CallCtx, []Param) (Value, error) {
		return val, nil
	}))
	qc := NewQualityClient(NewEndpoint(fs).NewClient(spec, &Loopback{Server: srv}, WireBinary), policy)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := qc.Call(context.Background(), "get", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBinaryEnvelope measures SOAP-bin envelope framing alone.
func BenchmarkBinaryEnvelopeRoundTrip(b *testing.B) {
	fs := NewMemFormatServer()
	spec := MustServiceSpec("EB",
		&OpDef{
			Name:   "echo",
			Params: []ParamSpec{{Name: "v", Type: workload.NestedStructType(4)}},
			Result: workload.NestedStructType(4),
		},
	)
	srv := NewEndpoint(fs).NewServer(spec)
	srv.MustHandle("echo", func(_ *CallCtx, params []Param) (Value, error) {
		return params[0].Value, nil
	})
	client := NewEndpoint(fs).NewClient(spec, &Loopback{Server: srv}, WireBinary)
	v := workload.NestedStruct(4, 3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(context.Background(), "echo", nil, Param{Name: "v", Value: v}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLoopbackCallBinary measures a complete SOAP-bin invocation
// (marshal, dispatch, unmarshal) with no network at all.
func BenchmarkLoopbackCallBinary(b *testing.B) {
	benchLoopbackCall(b, core.WireBinary)
}

// BenchmarkLoopbackCallXML is the same invocation as regular SOAP.
func BenchmarkLoopbackCallXML(b *testing.B) {
	benchLoopbackCall(b, core.WireXML)
}

func benchLoopbackCall(b *testing.B, wire core.WireFormat) {
	b.Helper()
	fs := NewMemFormatServer()
	spec := MustServiceSpec("B",
		&OpDef{
			Name:   "echo",
			Params: []ParamSpec{{Name: "v", Type: workload.IntArrayType()}},
			Result: workload.IntArrayType(),
		},
	)
	srv := NewEndpoint(fs).NewServer(spec)
	srv.MustHandle("echo", func(_ *CallCtx, params []Param) (Value, error) {
		return params[0].Value, nil
	})
	client := NewEndpoint(fs).NewClient(spec, &Loopback{Server: srv}, wire)
	v := workload.IntArray(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(context.Background(), "echo", nil, Param{Name: "v", Value: v}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- hot-path regression benchmarks (PR 4) ----
//
// CI runs these with -bench Hotpath -benchmem -benchtime=100x as a
// smoke gate; `make bench` produces the full BENCH_pr4.json report via
// the same measurements in internal/bench/hotpath.go.

// BenchmarkHotpathEncodeReused is the compiled-plan encode into a reused
// buffer: 0 B/op, 0 allocs/op at steady state.
func BenchmarkHotpathEncodeReused(b *testing.B) {
	enc, _ := newBenchCodec()
	v := workload.IntArray(1024)
	wire, err := enc.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, 0, len(wire)+64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := enc.AppendMarshal(buf[:0], v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotpathDecodeReused is the compiled-plan decode into a reused
// value tree: 0 B/op, 0 allocs/op at steady state.
func BenchmarkHotpathDecodeReused(b *testing.B) {
	enc, dec := newBenchCodec()
	v := workload.IntArray(1024)
	wire, err := enc.Marshal(v)
	if err != nil {
		b.Fatal(err)
	}
	var into Value
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := dec.UnmarshalInto(&into, wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHotpathLoopbackEchoReleased is the complete pooled
// invocation: request and response buffers from bufpool, decoded value
// slabs returned to the pool via Response.Release.
func BenchmarkHotpathLoopbackEchoReleased(b *testing.B) {
	fs := NewMemFormatServer()
	spec := MustServiceSpec("HB",
		&OpDef{
			Name:   "echo",
			Params: []ParamSpec{{Name: "v", Type: workload.IntArrayType()}},
			Result: workload.IntArrayType(),
		},
	)
	srv := NewEndpoint(fs).NewServer(spec)
	srv.MustHandle("echo", func(_ *CallCtx, params []Param) (Value, error) {
		return params[0].Value, nil
	})
	client := NewEndpoint(fs).NewClient(spec, &Loopback{Server: srv}, core.WireBinary)
	v := workload.IntArray(1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := client.Call(context.Background(), "echo", nil, Param{Name: "v", Value: v})
		if err != nil {
			b.Fatal(err)
		}
		resp.Release()
	}
}
