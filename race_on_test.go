//go:build race

package soapbinq

// raceEnabled reports whether the race detector instrumented this test
// binary; allocation-count gates skip under it (instrumentation changes
// pool and allocation behavior).
const raceEnabled = true
