package soapbinq

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestFacadeQuickstart exercises the public API surface the way the
// quickstart example does, in-process.
func TestFacadeQuickstart(t *testing.T) {
	spec := MustServiceSpec("Calc",
		&OpDef{
			Name:   "add",
			Params: []ParamSpec{{Name: "values", Type: List(Int())}},
			Result: Int(),
		},
	)
	formats := NewMemFormatServer()
	server := NewEndpoint(formats).NewServer(spec)
	server.MustHandle("add", func(_ *CallCtx, params []Param) (Value, error) {
		var total int64
		for _, e := range params[0].Value.List {
			total += e.Int
		}
		return IntV(total), nil
	})

	for _, wire := range []WireFormat{WireBinary, WireXML, WireXMLDeflate} {
		client := NewEndpoint(formats).NewClient(spec, &Loopback{Server: server}, wire)
		resp, err := client.Call(context.Background(), "add", nil, Param{Name: "values", Value: ListV(Int(), IntV(40), IntV(2))})
		if err != nil {
			t.Fatalf("%v: %v", wire, err)
		}
		if resp.Value.Int != 42 {
			t.Errorf("%v: add = %d", wire, resp.Value.Int)
		}
	}
}

// TestFacadeNilFormatServer covers the NewEndpoint(nil) convenience. Note
// two endpoints with nil servers cannot interoperate on the binary wire
// (separate format spaces) — XML works regardless.
func TestFacadeNilFormatServer(t *testing.T) {
	spec := MustServiceSpec("S", &OpDef{Name: "ping"})
	server := NewEndpoint(nil).NewServer(spec)
	server.MustHandle("ping", func(*CallCtx, []Param) (Value, error) {
		return Value{}, nil
	})
	client := NewEndpoint(nil).NewClient(spec, &Loopback{Server: server}, WireXML)
	if _, err := client.Call(context.Background(), "ping", nil); err != nil {
		t.Fatal(err)
	}
}

// TestFacadeQualityLoop drives the full binQ loop through the facade.
func TestFacadeQualityLoop(t *testing.T) {
	full := StructT("Big", F("n", Int()), F("pad", List(Char())))
	small := StructT("Sml", F("n", Int()))
	types := map[string]*Type{"Big": full, "Sml": small}
	policy, err := ParseQualityPolicy("attribute rtt\n0 50ms Big\n50ms inf Sml\n", types, nil)
	if err != nil {
		t.Fatal(err)
	}

	pad := make([]Value, 50000)
	for i := range pad {
		pad[i] = CharV(byte(i))
	}
	big := StructV(full, IntV(7), Value{Type: List(Char()), List: pad})

	spec := MustServiceSpec("Q", &OpDef{Name: "get", Result: full})
	formats := NewMemFormatServer()
	server := NewEndpoint(formats).NewServer(spec)
	server.MustHandle("get", QualityMiddleware(policy, nil, func(*CallCtx, []Param) (Value, error) {
		return big.Clone(), nil
	}))

	link := LinkProfile{Name: "slow", UpBps: 1e6, DownBps: 1e6, Latency: time.Millisecond}
	sim := NewSimLink(link, &Loopback{Server: server})
	client := NewQualityClient(NewEndpoint(formats).NewClient(spec, sim, WireBinary), policy)

	sawSmall := false
	for i := 0; i < 10; i++ {
		resp, err := client.Call(context.Background(), "get", nil)
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header[MsgTypeHeader] == "Sml" {
			sawSmall = true
			n, _ := resp.Value.Field("n")
			padField, _ := resp.Value.Field("pad")
			if n.Int != 7 || len(padField.List) != 0 {
				t.Errorf("padded response: n=%d pad=%d", n.Int, len(padField.List))
			}
			break
		}
	}
	if !sawSmall {
		t.Error("quality loop never downgraded over the slow link")
	}
	if client.RTT() <= 0 {
		t.Error("estimator never primed")
	}
}

// TestFacadeWSDLRoundTrip checks WSDL generation + parsing through the
// facade names.
func TestFacadeWSDLRoundTrip(t *testing.T) {
	spec := MustServiceSpec("Svc",
		&OpDef{Name: "get", Result: StructT("Rec", F("x", Int()))},
	)
	doc, err := GenerateWSDL(spec, "http://x/soap")
	if err != nil {
		t.Fatal(err)
	}
	defs, err := ParseWSDL(doc)
	if err != nil {
		t.Fatal(err)
	}
	if defs.Name != "Svc" {
		t.Errorf("name = %q", defs.Name)
	}
	if !strings.Contains(string(doc), "Rec") {
		t.Error("types missing from WSDL")
	}
}

// TestFacadeFaultType ensures faults surface as *Fault via errors.As
// through the aliased types.
func TestFacadeFaultType(t *testing.T) {
	spec := MustServiceSpec("S", &OpDef{Name: "boom"})
	formats := NewMemFormatServer()
	server := NewEndpoint(formats).NewServer(spec)
	server.MustHandle("boom", func(*CallCtx, []Param) (Value, error) {
		return Value{}, errors.New("nope")
	})
	client := NewEndpoint(formats).NewClient(spec, &Loopback{Server: server}, WireBinary)
	_, err := client.Call(context.Background(), "boom", nil)
	var f *Fault
	if !errors.As(err, &f) || f.Code != "Server" {
		t.Fatalf("err = %v", err)
	}
}

// TestFacadeUpgradeDowngrade covers the exported field-copy helpers.
func TestFacadeUpgradeDowngrade(t *testing.T) {
	full := StructT("FullR", F("a", Int()), F("b", String()))
	small := StructT("SmallR", F("a", Int()))
	v := StructV(full, IntV(5), StringV("x"))
	d, err := Downgrade(v, small)
	if err != nil {
		t.Fatal(err)
	}
	u, err := Upgrade(d, full)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := u.Field("a")
	bField, _ := u.Field("b")
	if a.Int != 5 || bField.Str != "" {
		t.Errorf("upgrade = %s", u)
	}
}
